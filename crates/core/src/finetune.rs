//! Mapping Optimization: centroid fine-tuning by backpropagation (§4.4).
//!
//! Substituting a centroid for the true input introduces approximation
//! error. Pegasus reduces it by simulating centroid assignment inside the
//! trained model and backpropagating the task loss to the stored centroids
//! (following the decision-tree-as-matrix formulation of Zhang \[51\]).
//!
//! The implementation here uses hard assignment with a straight-through
//! gradient: each training sample routes to its leaf, the leaf centroid
//! replaces the sample as model input, and `dL/d(centroid)` accumulates
//! the model's input gradient over the leaf's members.
//!
//! *Substitution note (recorded in DESIGN.md):* the paper fine-tunes both
//! centroids and cluster parameters (thresholds); this reproduction
//! fine-tunes centroids and keeps thresholds fixed — the assignment
//! function stays exactly implementable as TCAM ranges, and centroid
//! movement captures the bulk of the error reduction (see the
//! `ablation_finetune` bench).

use crate::fuzzy::ClusterTree;
use pegasus_nn::loss::softmax_cross_entropy;
use pegasus_nn::{Dataset, Sequential, Tensor};
use serde::{Deserialize, Serialize};

/// A clustered view of one input segment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SegmentTree {
    /// Segment start within the input vector.
    pub offset: usize,
    /// Segment length.
    pub len: usize,
    /// The fitted (and possibly fine-tuned) tree.
    pub tree: ClusterTree,
}

/// Fine-tuning hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct FinetuneConfig {
    /// Centroid learning rate.
    pub lr: f32,
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig { lr: 0.1, epochs: 3, batch: 256 }
    }
}

/// Fits one tree per input segment on the training inputs.
pub fn fit_segment_trees(
    inputs: &Tensor,
    offsets: &[usize],
    lens: &[usize],
    depth: usize,
) -> Vec<SegmentTree> {
    assert_eq!(offsets.len(), lens.len());
    offsets
        .iter()
        .zip(lens.iter())
        .map(|(&o, &l)| {
            let data: Vec<Vec<f32>> =
                (0..inputs.rows()).map(|r| inputs.row(r)[o..o + l].to_vec()).collect();
            SegmentTree { offset: o, len: l, tree: ClusterTree::fit(&data, depth) }
        })
        .collect()
}

/// Replaces each segment of `x` by its assigned centroid — the value the
/// dataplane actually computes with.
pub fn substitute(trees: &[SegmentTree], x: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    for st in trees {
        let seg = &x[st.offset..st.offset + st.len];
        let c = st.tree.centroid_of(seg);
        out[st.offset..st.offset + st.len].copy_from_slice(c);
    }
    out
}

/// Fine-tunes segment centroids against a trained classifier's loss.
/// Returns the per-epoch mean loss (on substituted inputs) so callers can
/// verify improvement.
pub fn finetune_centroids(
    trees: &mut [SegmentTree],
    model: &mut Sequential,
    data: &Dataset,
    cfg: &FinetuneConfig,
) -> Vec<f32> {
    let n = data.len();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    // Gradients must flow through the *deployed* transform: freeze batch
    // norms so the forward pass matches the affine the tables bake in.
    model.set_frozen(true);
    for _ in 0..cfg.epochs {
        let mut loss_sum = 0.0f32;
        let mut batches = 0;
        let mut start = 0;
        while start < n {
            let end = (start + cfg.batch).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let xb = data.x.select_rows(&idx);
            let yb: Vec<usize> = idx.iter().map(|&i| data.y[i]).collect();

            // Substitute centroids and remember assignments.
            let rows = xb.rows();
            let cols = xb.cols();
            let mut sub = Tensor::zeros(&[rows, cols]);
            let mut assign: Vec<Vec<usize>> = vec![Vec::with_capacity(rows); trees.len()];
            for r in 0..rows {
                let x = xb.row(r);
                let s = substitute(trees, x);
                sub.row_mut(r).copy_from_slice(&s);
                for (ti, st) in trees.iter().enumerate() {
                    assign[ti].push(st.tree.index_of(&x[st.offset..st.offset + st.len]));
                }
            }

            // Forward + loss + input gradient.
            let logits = model.forward(&sub, true);
            let (loss, grad_logits) = softmax_cross_entropy(&logits, &yb);
            let grad_input = model.backward(&grad_logits);
            model.zero_grad(); // model weights stay frozen

            // Accumulate per-centroid gradients.
            for (ti, st) in trees.iter_mut().enumerate() {
                let leaves = st.tree.leaves();
                let dim = st.len;
                let mut gsum = vec![vec![0.0f32; dim]; leaves];
                let mut count = vec![0u32; leaves];
                for (r, &leaf) in assign[ti].iter().enumerate().take(rows) {
                    count[leaf] += 1;
                    for (d, g) in gsum[leaf].iter_mut().enumerate() {
                        *g += grad_input.at2(r, st.offset + d);
                    }
                }
                let centroids = st.tree.centroids_mut();
                for (leaf, g) in gsum.iter().enumerate() {
                    if count[leaf] == 0 {
                        continue;
                    }
                    for d in 0..dim {
                        centroids[leaf][d] -= cfg.lr * g[d] / count[leaf] as f32;
                    }
                }
            }
            loss_sum += loss;
            batches += 1;
            start = end;
        }
        epoch_losses.push(loss_sum / batches.max(1) as f32);
    }
    model.set_frozen(false);
    epoch_losses
}

/// [`finetune_centroids`] with a quality guard: snapshots the trees, tunes,
/// and keeps whichever version scores the better substituted macro-F1 on
/// `data`. Returns `true` when the tuned trees were kept.
///
/// Gradient fine-tuning of a near-perfect model has nothing to gain and can
/// drift centroids off the decision manifold; the guard makes the §4.4
/// optimization strictly non-regressive, which is how the ablation bench
/// reports it.
pub fn finetune_centroids_guarded(
    trees: &mut Vec<SegmentTree>,
    model: &mut Sequential,
    data: &Dataset,
    cfg: &FinetuneConfig,
) -> bool {
    let before_trees = trees.clone();
    let before_f1 = substituted_macro_f1(trees, model, data);
    finetune_centroids(trees, model, data, cfg);
    let after_f1 = substituted_macro_f1(trees, model, data);
    if after_f1 < before_f1 {
        *trees = before_trees;
        false
    } else {
        true
    }
}

/// Convenience: accuracy of a model on centroid-substituted inputs — the
/// float-level estimate of dataplane accuracy before compilation.
pub fn substituted_macro_f1(trees: &[SegmentTree], model: &mut Sequential, data: &Dataset) -> f64 {
    let rows = data.len();
    let cols = data.x.cols();
    let mut sub = Tensor::zeros(&[rows, cols]);
    for r in 0..rows {
        let s = substitute(trees, data.x.row(r));
        sub.row_mut(r).copy_from_slice(&s);
    }
    let preds = pegasus_nn::train::predict_classes(model, &sub, &pegasus_nn::train::flat);
    pegasus_nn::metrics::pr_rc_f1(&data.y, &preds, data.classes()).f1
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_nn::init::rng;
    use pegasus_nn::layers::{Dense, Relu};
    use pegasus_nn::optim::Adam;
    use pegasus_nn::train::{flat, train_classifier, TrainConfig};

    /// Two-class data where class = (x0 > 128) over 4 features (codes).
    fn code_data(n: usize, seed: u64) -> Dataset {
        let mut r = rng(seed);
        let mut xs = Vec::with_capacity(n * 4);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f32> = (0..4)
                .map(|_| pegasus_nn::init::uniform(&mut r, &[1], 127.0).data()[0] + 128.0)
                .collect();
            ys.push(usize::from(row[0] > 128.0));
            xs.extend(row);
        }
        Dataset::new(Tensor::from_vec(xs, &[n, 4]), ys)
    }

    fn trained_model(data: &Dataset, seed: u64) -> Sequential {
        let mut r = rng(seed);
        let mut m = Sequential::new();
        m.add(Box::new(Dense::new(&mut r, 4, 8)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut r, 8, 2)));
        let mut opt = Adam::new(0.02);
        let cfg = TrainConfig { epochs: 20, batch_size: 64, verbose: false };
        train_classifier(&mut m, data, None, &mut opt, &cfg, &mut r, &flat);
        m
    }

    #[test]
    fn substitution_replaces_segments_with_centroids() {
        let data = code_data(200, 1);
        let trees = fit_segment_trees(&data.x, &[0, 2], &[2, 2], 2);
        let x = data.x.row(0);
        let s = substitute(&trees, x);
        assert_eq!(s.len(), 4);
        // The substituted value must be a known centroid of the tree.
        let idx = trees[0].tree.index_of(&x[0..2]);
        assert_eq!(&s[0..2], trees[0].tree.centroid(idx));
    }

    #[test]
    fn finetuning_reduces_loss() {
        let data = code_data(600, 2);
        let mut model = trained_model(&data, 3);
        // Shallow trees -> coarse centroids -> room to improve.
        let mut trees = fit_segment_trees(&data.x, &[0, 2], &[2, 2], 1);
        let cfg = FinetuneConfig { lr: 2.0, epochs: 6, batch: 128 };
        let losses = finetune_centroids(&mut trees, &mut model, &data, &cfg);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "losses did not fall: {losses:?}"
        );
    }

    #[test]
    fn finetuning_improves_substituted_accuracy() {
        let data = code_data(800, 4);
        let test = code_data(300, 5);
        let mut model = trained_model(&data, 6);
        let mut trees = fit_segment_trees(&data.x, &[0, 2], &[2, 2], 1);
        let before = substituted_macro_f1(&trees, &mut model, &test);
        let cfg = FinetuneConfig { lr: 2.0, epochs: 8, batch: 128 };
        finetune_centroids(&mut trees, &mut model, &data, &cfg);
        let after = substituted_macro_f1(&trees, &mut model, &test);
        assert!(
            after >= before - 1e-9,
            "fine-tuning regressed substituted F1: {before} -> {after}"
        );
    }

    #[test]
    fn model_weights_stay_frozen() {
        let data = code_data(300, 7);
        let mut model = trained_model(&data, 8);
        let before: Vec<f32> =
            model.params_mut().iter().flat_map(|p| p.value.data().to_vec()).collect();
        let mut trees = fit_segment_trees(&data.x, &[0, 2], &[2, 2], 2);
        finetune_centroids(&mut trees, &mut model, &data, &FinetuneConfig::default());
        let after: Vec<f32> =
            model.params_mut().iter().flat_map(|p| p.value.data().to_vec()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn centroids_stay_in_code_range_roughly() {
        let data = code_data(400, 9);
        let mut model = trained_model(&data, 10);
        let mut trees = fit_segment_trees(&data.x, &[0, 2], &[2, 2], 2);
        finetune_centroids(
            &mut trees,
            &mut model,
            &data,
            &FinetuneConfig { lr: 0.5, epochs: 3, batch: 128 },
        );
        for st in &trees {
            for li in 0..st.tree.leaves() {
                for &c in st.tree.centroid(li) {
                    assert!((-50.0..=305.0).contains(&c), "centroid {c} escaped");
                }
            }
        }
    }
}

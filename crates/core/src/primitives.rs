//! The Pegasus primitive IR: Partition, Map, SumReduce (Table 3).
//!
//! A [`PrimitiveProgram`] is a straight-line dataflow program over vector
//! values. DL operators lower onto exactly three node kinds:
//!
//! * **Partition** divides a vector into (possibly overlapping) segments —
//!   overlap is what expresses convolution windows;
//! * **Map** applies a function to one vector; the function vocabulary
//!   ([`MapFn`]) covers every operator in the paper's Table 4;
//! * **Reduce** combines several equal-length vectors element-wise. The
//!   paper's SumReduce is [`ReduceKind::Sum`]; max pooling uses
//!   [`ReduceKind::Max`], which PISA's max ALU implements with the same
//!   cost (the paper files pooling under "multi-input operations").
//!
//! The IR has a float-exact reference interpreter ([`PrimitiveProgram::eval`])
//! used to prove fusion passes semantics-preserving, and it is what the
//! compiler lowers to mapping tables.

use pegasus_nn::Tensor;
use serde::{Deserialize, Serialize};

/// Identifier of a value (vector) in a program.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct ValueId(pub usize);

/// A function applied by a Map primitive.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum MapFn {
    /// Element-wise affine transform `y_i = scale_i * x_i + shift_i`
    /// (batch norm at inference, bias addition, fixed-point rescaling).
    Affine {
        /// Per-element scale.
        scale: Vec<f32>,
        /// Per-element shift.
        shift: Vec<f32>,
    },
    /// Dense transform `y = W^T x + b` with `W: [in, out]` — the paper's
    /// "weighted aggregation" applied to one partition segment.
    MatVec {
        /// Weight matrix `[in, out]`.
        weight: Tensor,
        /// Bias `[out]` (zeros when the bias is carried by another segment).
        bias: Vec<f32>,
    },
    /// Element-wise ReLU.
    Relu,
    /// Element-wise tanh.
    Tanh,
    /// Element-wise logistic sigmoid.
    Sigmoid,
    /// Element-wise `exp` (the softmax numerator).
    Exp,
    /// Embedding lookup: each element is an index into `table`; outputs are
    /// concatenated rows. Output dim = in_dim * table_cols.
    Embed {
        /// Embedding table `[vocab, dim]`.
        table: Tensor,
    },
    /// Function composition, applied left to right — the result of merging
    /// consecutive Maps.
    Chain(Vec<MapFn>),
    /// An explicit lookup table over small discrete input domains: input
    /// element `i` must be an integer in `[0, domains[i])`; the output is
    /// `values[flatten(inputs)]`. This is how window models consume per-
    /// packet fuzzy indexes (the index means nothing numerically — only the
    /// centroid behind it does, and the table bakes that in).
    Table {
        /// Cardinality of each input element's domain.
        domains: Vec<usize>,
        /// Output vector per flattened input combination (row-major,
        /// last input fastest).
        values: Vec<Vec<f32>>,
    },
}

impl MapFn {
    /// Output dimension for a given input dimension (panics on mismatch).
    pub fn out_dim(&self, in_dim: usize) -> usize {
        match self {
            MapFn::Affine { scale, .. } => {
                assert_eq!(scale.len(), in_dim, "affine dim mismatch");
                in_dim
            }
            MapFn::MatVec { weight, .. } => {
                assert_eq!(weight.shape()[0], in_dim, "matvec dim mismatch");
                weight.shape()[1]
            }
            MapFn::Relu | MapFn::Tanh | MapFn::Sigmoid | MapFn::Exp => in_dim,
            MapFn::Embed { table } => in_dim * table.shape()[1],
            MapFn::Chain(fs) => fs.iter().fold(in_dim, |d, f| f.out_dim(d)),
            MapFn::Table { domains, values } => {
                assert_eq!(domains.len(), in_dim, "table domain arity mismatch");
                values.first().map_or(0, |v| v.len())
            }
        }
    }

    /// Applies the function to a vector.
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        match self {
            MapFn::Affine { scale, shift } => {
                assert_eq!(x.len(), scale.len());
                x.iter()
                    .zip(scale.iter().zip(shift.iter()))
                    .map(|(&v, (&s, &b))| s * v + b)
                    .collect()
            }
            MapFn::MatVec { weight, bias } => {
                let (in_dim, out_dim) = (weight.shape()[0], weight.shape()[1]);
                assert_eq!(x.len(), in_dim);
                let mut y = bias.clone();
                y.resize(out_dim, 0.0);
                for (i, &xi) in x.iter().enumerate() {
                    if xi == 0.0 {
                        continue;
                    }
                    for (o, yo) in y.iter_mut().enumerate() {
                        *yo += xi * weight.at2(i, o);
                    }
                }
                y
            }
            MapFn::Relu => x.iter().map(|&v| v.max(0.0)).collect(),
            MapFn::Tanh => x.iter().map(|&v| v.tanh()).collect(),
            MapFn::Sigmoid => x.iter().map(|&v| pegasus_nn::layers::sigmoid(v)).collect(),
            MapFn::Exp => x.iter().map(|&v| v.exp()).collect(),
            MapFn::Embed { table } => {
                let dim = table.shape()[1];
                let vocab = table.shape()[0];
                let mut out = Vec::with_capacity(x.len() * dim);
                for &v in x {
                    let idx = (v.round() as i64).clamp(0, vocab as i64 - 1) as usize;
                    out.extend_from_slice(table.row(idx));
                }
                out
            }
            MapFn::Chain(fs) => {
                let mut v = x.to_vec();
                for f in fs {
                    v = f.apply(&v);
                }
                v
            }
            MapFn::Table { domains, values } => {
                let mut flat = 0usize;
                for (&v, &d) in x.iter().zip(domains.iter()) {
                    let idx = (v.round() as i64).clamp(0, d as i64 - 1) as usize;
                    flat = flat * d + idx;
                }
                values[flat].clone()
            }
        }
    }

    /// True when the function is *linear* (`f(a+b) = f(a) + f(b)`), the
    /// precondition for the Linear Reordering fusion rule (§4.3).
    ///
    /// Note an affine map with nonzero shift is not linear in this sense.
    pub fn is_linear(&self) -> bool {
        match self {
            MapFn::Affine { shift, .. } => shift.iter().all(|&s| s == 0.0),
            MapFn::MatVec { bias, .. } => bias.iter().all(|&b| b == 0.0),
            MapFn::Chain(fs) => fs.iter().all(|f| f.is_linear()),
            _ => false,
        }
    }

    /// True when the function contains no nonlinearity (affine at most) —
    /// candidates for Advanced Fusion ❷ (Removal of Nonlinear Mappings).
    pub fn is_affine(&self) -> bool {
        match self {
            MapFn::Affine { .. } | MapFn::MatVec { .. } => true,
            MapFn::Chain(fs) => fs.iter().all(|f| f.is_affine()),
            _ => false,
        }
    }
}

/// Element-wise reduction kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceKind {
    /// Element-wise sum — the paper's SumReduce.
    Sum,
    /// Element-wise max (max pooling).
    Max,
}

/// One IR node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Primitive {
    /// Splits `input` into segments; segment `i` is
    /// `input[offsets[i] .. offsets[i] + lens[i]]` (segments may overlap).
    Partition {
        /// Source vector.
        input: ValueId,
        /// Segment start offsets.
        offsets: Vec<usize>,
        /// Segment lengths.
        lens: Vec<usize>,
        /// Output value per segment.
        outputs: Vec<ValueId>,
    },
    /// Applies `f` to `input`.
    Map {
        /// Source vector.
        input: ValueId,
        /// The function.
        f: MapFn,
        /// Result vector.
        output: ValueId,
    },
    /// Element-wise reduction of equal-length vectors.
    Reduce {
        /// Source vectors (≥ 1).
        inputs: Vec<ValueId>,
        /// Sum or Max.
        kind: ReduceKind,
        /// Result vector.
        output: ValueId,
    },
    /// Concatenates vectors (inverse of Partition; used to rebuild a full
    /// vector from per-segment results when a later op needs it whole).
    Concat {
        /// Source vectors in order.
        inputs: Vec<ValueId>,
        /// Result vector.
        output: ValueId,
    },
}

/// A straight-line primitive program.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PrimitiveProgram {
    /// Dimension of each value; index = `ValueId`.
    pub dims: Vec<usize>,
    /// Ops in execution order (producers before consumers).
    pub ops: Vec<Primitive>,
    /// The program input.
    pub input: ValueId,
    /// The program output.
    pub output: ValueId,
}

impl PrimitiveProgram {
    /// Creates a program with a single input value of dimension `in_dim`.
    pub fn new(in_dim: usize) -> Self {
        PrimitiveProgram {
            dims: vec![in_dim],
            ops: Vec::new(),
            input: ValueId(0),
            output: ValueId(0),
        }
    }

    /// Allocates a new value of the given dimension.
    pub fn new_value(&mut self, dim: usize) -> ValueId {
        self.dims.push(dim);
        ValueId(self.dims.len() - 1)
    }

    /// Dimension of a value.
    pub fn dim(&self, v: ValueId) -> usize {
        self.dims[v.0]
    }

    /// Appends a Partition op, returning the segment values.
    pub fn partition(&mut self, input: ValueId, offsets: &[usize], lens: &[usize]) -> Vec<ValueId> {
        assert_eq!(offsets.len(), lens.len());
        let in_dim = self.dim(input);
        for (&o, &l) in offsets.iter().zip(lens.iter()) {
            assert!(o + l <= in_dim, "segment [{o}, {}) out of range {in_dim}", o + l);
            assert!(l >= 1);
        }
        let outputs: Vec<ValueId> = lens.iter().map(|&l| self.new_value(l)).collect();
        self.ops.push(Primitive::Partition {
            input,
            offsets: offsets.to_vec(),
            lens: lens.to_vec(),
            outputs: outputs.clone(),
        });
        outputs
    }

    /// Appends a Partition into consecutive windows of `width` advancing by
    /// `stride` (the Figure 6 `Partition(input, dim, stride)` form).
    pub fn partition_strided(
        &mut self,
        input: ValueId,
        width: usize,
        stride: usize,
    ) -> Vec<ValueId> {
        let in_dim = self.dim(input);
        assert!(width >= 1 && stride >= 1 && width <= in_dim);
        let mut offsets = Vec::new();
        let mut o = 0;
        while o + width <= in_dim {
            offsets.push(o);
            o += stride;
        }
        let lens = vec![width; offsets.len()];
        self.partition(input, &offsets, &lens)
    }

    /// Appends a Map op, returning the result value.
    pub fn map(&mut self, input: ValueId, f: MapFn) -> ValueId {
        let out_dim = f.out_dim(self.dim(input));
        let output = self.new_value(out_dim);
        self.ops.push(Primitive::Map { input, f, output });
        output
    }

    /// Appends a Sum reduction.
    pub fn sum_reduce(&mut self, inputs: &[ValueId]) -> ValueId {
        self.reduce(inputs, ReduceKind::Sum)
    }

    /// Appends a Max reduction.
    pub fn max_reduce(&mut self, inputs: &[ValueId]) -> ValueId {
        self.reduce(inputs, ReduceKind::Max)
    }

    fn reduce(&mut self, inputs: &[ValueId], kind: ReduceKind) -> ValueId {
        assert!(!inputs.is_empty());
        let dim = self.dim(inputs[0]);
        for v in inputs {
            assert_eq!(self.dim(*v), dim, "reduce requires equal dims");
        }
        let output = self.new_value(dim);
        self.ops.push(Primitive::Reduce { inputs: inputs.to_vec(), kind, output });
        output
    }

    /// Appends a Concat op.
    pub fn concat(&mut self, inputs: &[ValueId]) -> ValueId {
        assert!(!inputs.is_empty());
        let dim: usize = inputs.iter().map(|v| self.dim(*v)).sum();
        let output = self.new_value(dim);
        self.ops.push(Primitive::Concat { inputs: inputs.to_vec(), output });
        output
    }

    /// Marks the program output.
    pub fn set_output(&mut self, v: ValueId) {
        self.output = v;
    }

    /// Float-exact reference evaluation.
    pub fn eval(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.dim(self.input), "input dim mismatch");
        let mut values: Vec<Option<Vec<f32>>> = vec![None; self.dims.len()];
        values[self.input.0] = Some(x.to_vec());
        for op in &self.ops {
            match op {
                Primitive::Partition { input, offsets, lens, outputs } => {
                    let v = values[input.0].clone().expect("value not computed");
                    for ((&o, &l), out) in offsets.iter().zip(lens.iter()).zip(outputs.iter()) {
                        values[out.0] = Some(v[o..o + l].to_vec());
                    }
                }
                Primitive::Map { input, f, output } => {
                    let v = values[input.0].as_ref().expect("value not computed");
                    values[output.0] = Some(f.apply(v));
                }
                Primitive::Reduce { inputs, kind, output } => {
                    let mut acc = values[inputs[0].0].clone().expect("value not computed");
                    for v in &inputs[1..] {
                        let rhs = values[v.0].as_ref().expect("value not computed");
                        for (a, &b) in acc.iter_mut().zip(rhs.iter()) {
                            *a = match kind {
                                ReduceKind::Sum => *a + b,
                                ReduceKind::Max => a.max(b),
                            };
                        }
                    }
                    values[output.0] = Some(acc);
                }
                Primitive::Concat { inputs, output } => {
                    let mut out = Vec::new();
                    for v in inputs {
                        out.extend_from_slice(values[v.0].as_ref().expect("value not computed"));
                    }
                    values[output.0] = Some(out);
                }
            }
        }
        values[self.output.0].clone().expect("output not computed")
    }

    /// Like [`PrimitiveProgram::eval`] but returns every intermediate value
    /// — the activation trace the compiler needs for cluster fitting and
    /// fixed-point calibration. `None` entries were never computed.
    pub fn eval_trace(&self, x: &[f32]) -> Vec<Option<Vec<f32>>> {
        assert_eq!(x.len(), self.dim(self.input), "input dim mismatch");
        let mut values: Vec<Option<Vec<f32>>> = vec![None; self.dims.len()];
        values[self.input.0] = Some(x.to_vec());
        for op in &self.ops {
            match op {
                Primitive::Partition { input, offsets, lens, outputs } => {
                    let v = values[input.0].clone().expect("value not computed");
                    for ((&o, &l), out) in offsets.iter().zip(lens.iter()).zip(outputs.iter()) {
                        values[out.0] = Some(v[o..o + l].to_vec());
                    }
                }
                Primitive::Map { input, f, output } => {
                    let v = values[input.0].as_ref().expect("value not computed");
                    values[output.0] = Some(f.apply(v));
                }
                Primitive::Reduce { inputs, kind, output } => {
                    let mut acc = values[inputs[0].0].clone().expect("value not computed");
                    for v in &inputs[1..] {
                        let rhs = values[v.0].as_ref().expect("value not computed");
                        for (a, &b) in acc.iter_mut().zip(rhs.iter()) {
                            *a = match kind {
                                ReduceKind::Sum => *a + b,
                                ReduceKind::Max => a.max(b),
                            };
                        }
                    }
                    values[output.0] = Some(acc);
                }
                Primitive::Concat { inputs, output } => {
                    let mut out = Vec::new();
                    for v in inputs {
                        out.extend_from_slice(values[v.0].as_ref().expect("value not computed"));
                    }
                    values[output.0] = Some(out);
                }
            }
        }
        values
    }

    /// Number of Map ops — each is one mapping-table lookup on the
    /// dataplane, the quantity Primitive Fusion minimizes.
    pub fn map_count(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, Primitive::Map { .. })).count()
    }

    /// Number of Reduce ops.
    pub fn reduce_count(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, Primitive::Reduce { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_map() {
        let f = MapFn::Affine { scale: vec![2.0, 3.0], shift: vec![1.0, -1.0] };
        assert_eq!(f.apply(&[1.0, 1.0]), vec![3.0, 2.0]);
        assert_eq!(f.out_dim(2), 2);
    }

    #[test]
    fn matvec_map() {
        // W = [[1,2],[3,4]] (in=2, out=2), b = [10, 20]
        let f = MapFn::MatVec {
            weight: Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]),
            bias: vec![10.0, 20.0],
        };
        assert_eq!(f.apply(&[1.0, 1.0]), vec![14.0, 26.0]);
    }

    #[test]
    fn embed_map_concatenates_rows() {
        let f = MapFn::Embed { table: Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]) };
        assert_eq!(f.apply(&[1.0, 0.0]), vec![3.0, 4.0, 1.0, 2.0]);
        assert_eq!(f.out_dim(2), 4);
    }

    #[test]
    fn linearity_classification() {
        assert!(MapFn::Affine { scale: vec![2.0], shift: vec![0.0] }.is_linear());
        assert!(!MapFn::Affine { scale: vec![2.0], shift: vec![1.0] }.is_linear());
        assert!(!MapFn::Relu.is_linear());
        assert!(MapFn::Affine { scale: vec![2.0], shift: vec![1.0] }.is_affine());
        assert!(!MapFn::Tanh.is_affine());
    }

    #[test]
    fn chain_composes_left_to_right() {
        let f =
            MapFn::Chain(vec![MapFn::Affine { scale: vec![2.0], shift: vec![0.0] }, MapFn::Relu]);
        assert_eq!(f.apply(&[-3.0]), vec![0.0]);
        assert_eq!(f.apply(&[3.0]), vec![6.0]);
    }

    /// The paper's canonical example: MatMul = Partition → Map → SumReduce.
    #[test]
    fn partitioned_matmul_equals_dense() {
        // y = W^T x with W: [4, 2]; partition x into two halves.
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[4, 2]);
        let x = [1.0, 2.0, 3.0, 4.0];

        // Direct.
        let direct = MapFn::MatVec { weight: w.clone(), bias: vec![0.0, 0.0] }.apply(&x);

        // Partitioned.
        let mut p = PrimitiveProgram::new(4);
        let segs = p.partition_strided(p.input, 2, 2);
        let w_parts: Vec<Tensor> = vec![
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]),
            Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]),
        ];
        let mapped: Vec<ValueId> = segs
            .iter()
            .zip(w_parts)
            .map(|(&s, w)| p.map(s, MapFn::MatVec { weight: w, bias: vec![0.0, 0.0] }))
            .collect();
        let out = p.sum_reduce(&mapped);
        p.set_output(out);
        assert_eq!(p.eval(&x), direct);
    }

    #[test]
    fn strided_partition_windows() {
        let mut p = PrimitiveProgram::new(6);
        let segs = p.partition_strided(p.input, 3, 1);
        assert_eq!(segs.len(), 4); // windows at offsets 0..3
        let concat = p.concat(&segs);
        p.set_output(concat);
        let y = p.eval(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(y[..3], [0.0, 1.0, 2.0]);
        assert_eq!(y[9..12], [3.0, 4.0, 5.0]);
    }

    #[test]
    fn max_reduce() {
        let mut p = PrimitiveProgram::new(4);
        let segs = p.partition_strided(p.input, 2, 2);
        let out = p.max_reduce(&segs);
        p.set_output(out);
        assert_eq!(p.eval(&[1.0, 9.0, 5.0, 2.0]), vec![5.0, 9.0]);
    }

    #[test]
    fn softmax_lowering_shape() {
        // Softmax = Map(Exp) -> SumReduce over singleton partitions -> ... ;
        // here just check Exp + sum machinery works.
        let mut p = PrimitiveProgram::new(3);
        let e = p.map(p.input, MapFn::Exp);
        let singles = p.partition(e, &[0, 1, 2], &[1, 1, 1]);
        let total = p.sum_reduce(&singles);
        p.set_output(total);
        let y = p.eval(&[0.0, 1.0, 2.0]);
        let expect = 1.0f32 + 1.0f32.exp() + 2.0f32.exp();
        assert!((y[0] - expect).abs() < 1e-5);
    }

    #[test]
    fn map_count_counts_lookups() {
        let mut p = PrimitiveProgram::new(4);
        let segs = p.partition_strided(p.input, 2, 2);
        let m0 = p.map(segs[0], MapFn::Relu);
        let m1 = p.map(segs[1], MapFn::Relu);
        let out = p.sum_reduce(&[m0, m1]);
        p.set_output(out);
        assert_eq!(p.map_count(), 2);
        assert_eq!(p.reduce_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_bounds_checked() {
        let mut p = PrimitiveProgram::new(4);
        p.partition(p.input, &[3], &[2]);
    }
}

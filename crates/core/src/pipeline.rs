//! The staged `Pegasus` builder — the one way from a trained model to a
//! serving dataplane.
//!
//! ```text
//! Pegasus::new(model)            // configure
//!     .options(opts)
//!     .target(CompileTarget::Classify)
//!     .compile(&data)?           // -> Compiled (artifact + metrics)
//!     .deploy(&SwitchConfig::tofino2())?   // -> Deployment (serving)
//! ```
//!
//! The stages are separate types, so invalid orderings (deploying before
//! compiling, classifying before deploying) do not typecheck, and every
//! fallible edge returns [`PegasusError`]. One builder serves all six paper
//! models and all three baselines: whatever a model
//! [`lower`](DataplaneNet::lower)s to — a primitive program, a bespoke
//! table pipeline, or a per-flow windowed pipeline — compiles and deploys
//! through the same two calls.

use crate::compile::{
    compile_with_trees, CompileOptions, CompileReport, CompileTarget, CompiledPipeline,
};
use crate::engine::server::{EngineArtifact, EngineBuilder, TenantConfig};
use crate::engine::{StreamConfig, StreamReport};
use crate::error::PegasusError;
use crate::flowpipe::{FlowClassifier, FlowPipeline};
use crate::models::{DataplaneNet, Lowered, ModelData, TrainSettings};
use crate::runtime::DataplaneModel;
use pegasus_net::{FrameSource, PacketSource};
use pegasus_nn::metrics::PrRcF1;
use pegasus_nn::Dataset;
use pegasus_switch::{ResourceReport, SwitchConfig};
use std::sync::Arc;

/// Stage 1: a trained model plus compile configuration.
pub struct Pegasus<M: DataplaneNet> {
    model: M,
    opts: CompileOptions,
    target: Option<CompileTarget>,
}

impl<M: DataplaneNet> Pegasus<M> {
    /// Wraps a trained model with default compile options.
    pub fn new(model: M) -> Self {
        Pegasus { model, opts: CompileOptions::default(), target: None }
    }

    /// Trains a fresh model and wraps it in one step.
    ///
    /// ```no_run
    /// use pegasus_core::models::mlp_b::MlpB;
    /// use pegasus_core::models::{ModelData, TrainSettings};
    /// use pegasus_core::pipeline::Pegasus;
    ///
    /// # fn run(train: pegasus_nn::Dataset) -> Result<(), pegasus_core::error::PegasusError> {
    /// let data = ModelData::new().with_stat(&train);
    /// let staged = Pegasus::<MlpB>::train(&data, &TrainSettings::default())?;
    /// # let _ = staged; Ok(())
    /// # }
    /// ```
    pub fn train(data: &ModelData<'_>, settings: &TrainSettings) -> Result<Self, PegasusError> {
        Ok(Pegasus::new(M::train(data, settings)?))
    }

    /// Sets the compiler options (models may further tune them — e.g.
    /// activation-width clamps — during lowering).
    pub fn options(mut self, opts: CompileOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Overrides the pipeline head. Defaults to the model's
    /// [`default_target`](DataplaneNet::default_target) (`Classify` for
    /// classifiers, `Scores` for the AutoEncoder).
    ///
    /// Models that lower to bespoke pipelines (RNN-B, CNN-L, the
    /// baselines, the AutoEncoder) fix their own head; asking them for the
    /// other target fails at [`compile`](Pegasus::compile) with
    /// [`PegasusError::Unsupported`] rather than being silently ignored.
    pub fn target(mut self, target: CompileTarget) -> Self {
        self.target = Some(target);
        self
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Lowers and compiles the model against the bundle's training views.
    ///
    /// ```no_run
    /// use pegasus_core::compile::{CompileOptions, CompileTarget};
    /// use pegasus_core::models::mlp_b::MlpB;
    /// use pegasus_core::models::{ModelData, TrainSettings};
    /// use pegasus_core::pipeline::Pegasus;
    ///
    /// # fn run(train: pegasus_nn::Dataset) -> Result<(), pegasus_core::error::PegasusError> {
    /// let data = ModelData::new().with_stat(&train);
    /// let compiled = Pegasus::<MlpB>::train(&data, &TrainSettings::default())?
    ///     .options(CompileOptions { clustering_depth: 5, ..Default::default() })
    ///     .target(CompileTarget::Classify)
    ///     .compile(&data)?;
    /// println!("{} tables, {} entries", compiled.report().tables, compiled.report().entries);
    /// # Ok(())
    /// # }
    /// ```
    pub fn compile(mut self, data: &ModelData<'_>) -> Result<Compiled<M>, PegasusError> {
        let target = self.target.unwrap_or_else(|| self.model.default_target());
        let artifact = match self.model.lower(data, &self.opts)? {
            Lowered::Primitives { program, tree_overrides, opts, stateful_bits_per_flow } => {
                let rows = self.model.calibration_inputs(data)?;
                let name = table_prefix(self.model.name());
                let mut pipeline =
                    compile_with_trees(&program, &rows, &opts, target, &name, &tree_overrides)?;
                pipeline.program.stateful_bits_per_flow = stateful_bits_per_flow;
                Artifact::Single(Box::new(pipeline))
            }
            Lowered::Pipeline(pipeline) => Artifact::Single(pipeline),
            Lowered::Flow(flow) => Artifact::Flow(flow),
        };
        // Bespoke pipelines carry their own head; an explicit override that
        // contradicts it must fail loudly, not be dropped.
        if let Some(requested) = self.target {
            let actual = match &artifact {
                Artifact::Single(p) => head_of(p.predicted_field.is_some()),
                Artifact::Flow(p) => head_of(p.predicted_field.is_some()),
            };
            if requested != actual {
                return Err(PegasusError::Unsupported {
                    model: self.model.name(),
                    what: "overriding the pipeline head of a bespoke lowering",
                });
            }
        }
        // Static verification of the fresh artifact (no switch config yet:
        // resource fit is a deploy-time question, structural and semantic
        // soundness is a compile-time one). A compiler emitting a corrupt
        // program is a bug this surfaces immediately, with typed
        // diagnostics instead of a downstream panic.
        let report = artifact.verify(None);
        if report.has_errors() {
            return Err(PegasusError::Verify { report: Box::new(report) });
        }
        Ok(Compiled { model: self.model, artifact })
    }
}

/// The head an emitted artifact actually has.
fn head_of(has_predicted_field: bool) -> CompileTarget {
    if has_predicted_field {
        CompileTarget::Classify
    } else {
        CompileTarget::Scores
    }
}

/// Sanitizes a display name into a table-name prefix ("MLP-B" → "mlp_b").
fn table_prefix(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect();
    while out.contains("__") {
        out = out.replace("__", "_");
    }
    out.trim_matches('_').to_string()
}

/// A compiled artifact: stateless single-pass or per-flow windowed.
pub enum Artifact {
    /// One feature row in, one verdict out; no cross-packet state.
    Single(Box<CompiledPipeline>),
    /// Per-flow registers; driven packet-by-packet after deployment.
    Flow(Box<FlowPipeline>),
}

impl Artifact {
    /// Compilation metrics.
    pub fn report(&self) -> &CompileReport {
        match self {
            Artifact::Single(p) => &p.report,
            Artifact::Flow(p) => &p.report,
        }
    }

    /// Runs the static verifier over this artifact. With a switch
    /// configuration the report includes resource accounting (`V204`);
    /// without one it covers the structural, interval, and semantic
    /// layers only.
    pub fn verify(
        &self,
        cfg: Option<&pegasus_switch::SwitchConfig>,
    ) -> crate::verify::VerifyReport {
        match self {
            Artifact::Single(p) => crate::verify::verify_pipeline(p, cfg),
            Artifact::Flow(p) => crate::verify::verify_flow(p, cfg),
        }
    }
}

/// Stage 2: a compiled (not yet deployed) model.
pub struct Compiled<M: DataplaneNet> {
    model: M,
    artifact: Artifact,
}

impl<M: DataplaneNet> Compiled<M> {
    /// Compilation metrics (tables, entries, lookups per input).
    pub fn report(&self) -> &CompileReport {
        self.artifact.report()
    }

    /// The compiled artifact.
    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Unwraps the compiled stage, returning the trained model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Validates the artifact against a switch configuration and loads it.
    ///
    /// ```no_run
    /// use pegasus_core::models::mlp_b::MlpB;
    /// use pegasus_core::models::{ModelData, TrainSettings};
    /// use pegasus_core::pipeline::Pegasus;
    /// use pegasus_switch::SwitchConfig;
    ///
    /// # fn run(train: pegasus_nn::Dataset) -> Result<(), pegasus_core::error::PegasusError> {
    /// let data = ModelData::new().with_stat(&train);
    /// let deployment = Pegasus::<MlpB>::train(&data, &TrainSettings::default())?
    ///     .compile(&data)?
    ///     .deploy(&SwitchConfig::tofino2())?;
    /// let class = deployment.classify(&[0.0; 16])?;
    /// # let _ = class; Ok(())
    /// # }
    /// ```
    pub fn deploy(self, cfg: &SwitchConfig) -> Result<Deployment<M>, PegasusError> {
        let plane = match self.artifact {
            Artifact::Single(pipeline) => {
                Plane::Single(Arc::new(DataplaneModel::deploy(*pipeline, cfg)?))
            }
            Artifact::Flow(flow) => Plane::Flow(Arc::new(FlowClassifier::deploy(*flow, cfg)?)),
        };
        Ok(Deployment { model: self.model, plane })
    }
}

/// The deployed plane sits behind `Arc`s so a serving engine can hold the
/// artifact (and keep serving it) independently of this deployment's
/// lifetime — [`Deployment::engine_artifact`] just clones the handle.
enum Plane {
    Single(Arc<DataplaneModel>),
    Flow(Arc<FlowClassifier>),
}

/// Stage 3: a model loaded onto the switch simulator and serving.
///
/// Inference goes through the shared [`DataplaneModel`] runtime (stateless
/// pipelines) or, for per-flow pipelines, through
/// [`flow_mut`](Deployment::flow_mut) packet-by-packet. The trained float
/// model stays accessible for side-by-side evaluation.
pub struct Deployment<M: DataplaneNet> {
    model: M,
    plane: Plane,
}

impl<M: DataplaneNet> Deployment<M> {
    /// The wrapped model (float reference, Figure 9 comparisons).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Switch resource utilization (the Table 6 row).
    pub fn resource_report(&self) -> ResourceReport {
        match &self.plane {
            Plane::Single(dp) => dp.resource_report(),
            Plane::Flow(fc) => fc.resource_report(),
        }
    }

    /// Classifies one sample of feature codes (stateless pipelines).
    pub fn classify(&self, codes: &[f32]) -> Result<usize, PegasusError> {
        match &self.plane {
            Plane::Single(dp) => dp.classify(codes),
            Plane::Flow(fc) => Err(flow_state_err(fc)),
        }
    }

    /// Classifies a batch of samples (see [`DataplaneModel::classify_batch`]).
    pub fn classify_batch(&self, rows: &[Vec<f32>]) -> Vec<Result<usize, PegasusError>> {
        match &self.plane {
            Plane::Single(dp) => dp.classify_batch(rows),
            Plane::Flow(fc) => {
                let err = flow_state_err(fc);
                rows.iter().map(|_| Err(err.clone())).collect()
            }
        }
    }

    /// Decoded output scores of one sample (stateless pipelines).
    pub fn scores(&self, codes: &[f32]) -> Result<Vec<f32>, PegasusError> {
        match &self.plane {
            Plane::Single(dp) => dp.scores(codes),
            Plane::Flow(fc) => Err(flow_state_err(fc)),
        }
    }

    /// Evaluates classification quality over a dataset of code rows.
    pub fn evaluate(&self, data: &Dataset) -> Result<PrRcF1, PegasusError> {
        match &self.plane {
            Plane::Single(dp) => dp.evaluate(data),
            Plane::Flow(fc) => Err(flow_state_err(fc)),
        }
    }

    /// The shared stateless runtime, when this deployment has one.
    pub fn dataplane(&self) -> Option<&DataplaneModel> {
        match &self.plane {
            Plane::Single(dp) => Some(dp),
            Plane::Flow(_) => None,
        }
    }

    /// Unwraps the deployment, returning the trained model (e.g. to
    /// recompile it with different options).
    pub fn into_model(self) -> M {
        self.model
    }

    /// The serving-engine view of this deployment: the compiled artifact
    /// (flattened LUTs or per-flow register pipeline) plus its streaming
    /// feature family, detached from the trained float model.
    ///
    /// Hand the artifact to
    /// [`ControlHandle::attach`](crate::engine::server::ControlHandle::attach)
    /// to serve it as one tenant of a long-lived
    /// [`EngineServer`](crate::engine::server::EngineServer), or to
    /// [`swap`](crate::engine::server::ControlHandle::swap) to hot-swap a
    /// running tenant onto it. Cheap (an `Arc` clone): the engine shares
    /// the deployed artifact rather than copying it, and the deployment
    /// remains usable for [`classify`](Deployment::classify) /
    /// [`evaluate`](Deployment::evaluate) side-by-side.
    ///
    /// Fails with [`PegasusError::NotAClassifier`] for score-only
    /// pipelines — the packet engine serves class verdicts.
    pub fn engine_artifact(&self) -> Result<EngineArtifact, PegasusError> {
        match &self.plane {
            Plane::Single(dp) => {
                if dp.pipeline().predicted_field.is_none() {
                    return Err(PegasusError::NotAClassifier {
                        pipeline: dp.pipeline().program.name.clone(),
                    });
                }
                Ok(EngineArtifact::stateless(
                    Arc::clone(dp),
                    self.model.stream_features(),
                    &dp.pipeline().program.name,
                ))
            }
            Plane::Flow(fc) => {
                if fc.pipeline().predicted_field.is_none() {
                    return Err(PegasusError::NotAClassifier {
                        pipeline: fc.pipeline().program.name.clone(),
                    });
                }
                Ok(EngineArtifact::flow(Arc::clone(fc), &fc.pipeline().program.name))
            }
        }
    }

    /// Streams a packet source through the sharded packet engine.
    ///
    /// Flows are hashed to `shards` worker threads RSS-style (by
    /// bidirectional five-tuple), each shard owning its flow state — host
    /// windows for stateless pipelines, a forked register file for
    /// per-flow pipelines — so the hot loop takes no locks. Stateless
    /// pipelines execute through the flattened-LUT representation baked at
    /// deploy time (see [`crate::engine`]); their per-flow results are
    /// bit-identical at any shard count, because host flow state is keyed
    /// exactly by five-tuple. Per-flow *register* pipelines index their
    /// on-switch state by a truncated flow hash, so unrelated flows can
    /// collide in a register slot — exactly as on the hardware — and the
    /// collision set depends on which flows share a register file:
    /// verdicts for hash-colliding flows may therefore differ across
    /// shard counts (forking shrinks each file's population, so more
    /// shards means *fewer* collisions than one shared file).
    ///
    /// Returns per-shard and aggregate packets/s and latency statistics.
    /// Fails with [`PegasusError::NotAClassifier`] for score-only
    /// pipelines (stream their scores via [`classify`](Self::classify)
    /// alternatives instead).
    ///
    /// ```no_run
    /// use pegasus_core::models::mlp_b::MlpB;
    /// use pegasus_core::models::{ModelData, TrainSettings};
    /// use pegasus_core::pipeline::Pegasus;
    /// use pegasus_switch::SwitchConfig;
    ///
    /// # fn run(
    /// #     train: pegasus_nn::Dataset,
    /// #     trace: pegasus_net::Trace,
    /// # ) -> Result<(), pegasus_core::error::PegasusError> {
    /// let data = ModelData::new().with_stat(&train);
    /// let deployment = Pegasus::<MlpB>::train(&data, &TrainSettings::default())?
    ///     .compile(&data)?
    ///     .deploy(&SwitchConfig::tofino2())?;
    /// let report = deployment.stream(&mut trace.source(), 4)?;
    /// println!(
    ///     "{:.0} pps over {} flows, p99 {} ns",
    ///     report.pps(),
    ///     report.flows,
    ///     report.latency.quantile_nanos(0.99),
    /// );
    /// # Ok(())
    /// # }
    /// ```
    pub fn stream(
        &self,
        source: &mut dyn PacketSource,
        shards: usize,
    ) -> Result<StreamReport, PegasusError> {
        self.stream_with(source, &StreamConfig { shards, ..StreamConfig::default() })
    }

    /// [`stream`](Self::stream) with full engine configuration (prediction
    /// recording, batch and queue sizing).
    ///
    /// This is the legacy one-shot entry point, kept as a thin
    /// compatibility wrapper over the long-lived
    /// [`EngineServer`](crate::engine::server::EngineServer): it builds a
    /// server, attaches this deployment as a single catch-all tenant,
    /// feeds the source to exhaustion, shuts the server down, and returns
    /// that tenant's report. Out-of-domain `cfg` values (zero
    /// `shards`/`batch`/`queue_batches`) are silently **clamped to 1** —
    /// the behavior this API has always had; the server path's
    /// [`EngineBuilder`] instead
    /// rejects them with [`PegasusError::InvalidConfig`].
    pub fn stream_with(
        &self,
        source: &mut dyn PacketSource,
        cfg: &StreamConfig,
    ) -> Result<StreamReport, PegasusError> {
        let artifact = self.engine_artifact()?;
        let server = EngineBuilder::new()
            .shards(cfg.shards.max(1))
            .batch(cfg.batch.max(1))
            .queue_batches(cfg.queue_batches.max(1))
            .build()?;
        let tenant = server.control().attach(
            artifact,
            TenantConfig::new()
                .record_predictions(cfg.record_predictions)
                .flow_table(cfg.flow_table),
        )?;
        let ingress = server.ingress();
        while let Some(pkt) = source.next_packet() {
            ingress.push(pkt)?;
            // The run is doomed once its only tenant errored; stop feeding
            // instead of pushing the rest of the source into a dead shard
            // (the legacy engine aborted dispatch the same way).
            if server.tenant_failed() {
                break;
            }
        }
        let mut report = server.shutdown()?;
        report
            .take_tenant(tenant)
            .ok_or(PegasusError::UnknownTenant { tenant: tenant.id() })?
            .result
    }

    /// Streams raw wire frames through the sharded packet engine — the
    /// bytes-to-verdict dual of [`stream`](Self::stream).
    ///
    /// Every frame is parsed in-line by the zero-copy wire frontend
    /// (`pegasus_net::wire::parse_frame`); parse rejections are counted in
    /// the returned report's [`parse`](crate::engine::StreamReport::parse)
    /// buckets and dropped, and everything that parses is served exactly
    /// like a structured packet (bit-identical verdicts — see
    /// `tests/raw_path.rs`). Point it at a
    /// [`PcapSource`](pegasus_net::PcapSource) to classify a capture file:
    ///
    /// ```no_run
    /// use pegasus_core::models::mlp_b::MlpB;
    /// use pegasus_core::models::{ModelData, TrainSettings};
    /// use pegasus_core::pipeline::Pegasus;
    /// use pegasus_net::PcapSource;
    /// use pegasus_switch::SwitchConfig;
    ///
    /// # fn run(train: pegasus_nn::Dataset) -> Result<(), pegasus_core::error::PegasusError> {
    /// let data = ModelData::new().with_stat(&train);
    /// let deployment = Pegasus::<MlpB>::train(&data, &TrainSettings::default())?
    ///     .compile(&data)?
    ///     .deploy(&SwitchConfig::tofino2())?;
    /// let mut capture = PcapSource::open("trace.pcap").expect("readable capture");
    /// let report = deployment.stream_frames(&mut capture, 1)?;
    /// println!("{:.0} pps, {} frames rejected", report.pps(), report.parse.total());
    /// # Ok(())
    /// # }
    /// ```
    pub fn stream_frames(
        &self,
        source: &mut dyn FrameSource,
        shards: usize,
    ) -> Result<StreamReport, PegasusError> {
        self.stream_frames_with(source, &StreamConfig { shards, ..StreamConfig::default() })
    }

    /// [`stream_frames`](Self::stream_frames) with full engine
    /// configuration. Same clamping semantics as
    /// [`stream_with`](Self::stream_with).
    pub fn stream_frames_with(
        &self,
        source: &mut dyn FrameSource,
        cfg: &StreamConfig,
    ) -> Result<StreamReport, PegasusError> {
        let artifact = self.engine_artifact()?;
        let server = EngineBuilder::new()
            .shards(cfg.shards.max(1))
            .batch(cfg.batch.max(1))
            .queue_batches(cfg.queue_batches.max(1))
            .build()?;
        let tenant = server.control().attach(
            artifact,
            TenantConfig::new()
                .record_predictions(cfg.record_predictions)
                .flow_table(cfg.flow_table),
        )?;
        let ingress = server.ingress();
        while let Some(frame) = source.next_frame() {
            ingress.push_frame(frame)?;
            if server.tenant_failed() {
                break;
            }
        }
        let mut report = server.shutdown()?;
        let parse = report.parse_errors;
        let mut stream = report
            .take_tenant(tenant)
            .ok_or(PegasusError::UnknownTenant { tenant: tenant.id() })?
            .result?;
        // Frame parsing happens at the dispatcher (pre-routing); fold its
        // counters into the one-tenant report so the caller sees the whole
        // bytes-to-verdict story in one place.
        stream.parse.merge(&parse);
        Ok(stream)
    }

    /// Read-only access to the per-flow classifier of windowed pipelines
    /// (`None` for stateless deployments) — slot counts, per-slot state
    /// bits, resource accounting. Unlike [`flow_mut`](Deployment::flow_mut)
    /// it works while a serving engine shares the plane.
    pub fn flow(&self) -> Option<&FlowClassifier> {
        match &self.plane {
            Plane::Flow(fc) => Some(fc),
            Plane::Single(_) => None,
        }
    }

    /// The per-flow classifier for windowed pipelines (packet-by-packet
    /// serving and trace replay).
    ///
    /// Needs exclusive ownership of the classifier's register state:
    /// fails with [`PegasusError::Unsupported`] while an
    /// [`engine_artifact`](Deployment::engine_artifact) taken from this
    /// deployment is still alive (the serving engine shares the plane).
    pub fn flow_mut(&mut self) -> Result<&mut FlowClassifier, PegasusError> {
        match &mut self.plane {
            Plane::Flow(fc) => Arc::get_mut(fc).ok_or(PegasusError::Unsupported {
                model: "flow classifiers shared with a serving engine",
                what: "exclusive per-flow packet processing",
            }),
            Plane::Single(_) => Err(PegasusError::Unsupported {
                model: "stateless pipelines",
                what: "per-flow packet processing",
            }),
        }
    }
}

/// The error every stateless entry point returns for per-flow pipelines.
fn flow_state_err(fc: &FlowClassifier) -> PegasusError {
    PegasusError::FlowStateRequired { pipeline: fc.pipeline().program.name.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prefix_sanitizes() {
        assert_eq!(table_prefix("MLP-B"), "mlp_b");
        assert_eq!(table_prefix("Leo (Decision Tree)"), "leo_decision_tree");
        assert_eq!(table_prefix("CNN-L"), "cnn_l");
    }
}

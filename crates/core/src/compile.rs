//! The Pegasus compiler: fused primitive programs → switch programs.
//!
//! This is the translation tool of §6.2. For every Map the compiler either
//! **enumerates** the input space exactly (small domains — embedding
//! lookups, single 8-bit codes: pure "computation bypassing") or applies
//! **fuzzy matching** (§4.2): fit a clustering tree on the training
//! activations of the Map's input, convert each leaf's hyper-rectangle to
//! range-match rules (lowered to TCAM via CRC inside `pegasus-switch`), and
//! store `f(centroid)` as the entry's action data. SumReduce becomes a
//! binary adder tree of action-only tables; classification ends in a
//! tournament argmax built from sign-bit ternary matches.
//!
//! Activations travel between tables as biased fixed-point integers
//! ([`NumFormat`]); formats are calibrated per value group from training
//! activations — the paper's Adaptive Fixed-Point Quantization (§4.4).

use crate::error::PegasusError;
use crate::fuzzy::ClusterTree;
use crate::numformat::NumFormat;
use crate::primitives::{MapFn, Primitive, PrimitiveProgram, ReduceKind};
use pegasus_switch::{
    Action, AluOp, FieldId, KeyPart, MatchKind, Operand, PhvLayout, SwitchProgram, Table,
    TableEntry, TernaryKey,
};
use serde::{Deserialize, Serialize};

/// Compiler knobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Clustering-tree depth per fuzzy Map (Figure 6 `clustering_depth`).
    pub clustering_depth: usize,
    /// Stored activation width in bits for intermediate values. The paper
    /// uses 8-bit activation queries (§1); 12 bits keeps more precision
    /// while the match keys stay TCAM-affordable.
    pub act_bits: u8,
    /// Maps whose whole input domain has at most this many points are
    /// enumerated exactly instead of clustered.
    pub max_exact_entries: usize,
    /// Emit the two-table (range → index, index → value) form instead of
    /// direct range → value tables. Costs one extra stage per Map but makes
    /// the fuzzy index available for per-flow storage (§7.3).
    pub indirect_index: bool,
    /// Cap on training samples used for tree fitting and calibration.
    pub max_tree_samples: usize,
    /// Significant bits kept when snapping fuzzy thresholds to power-of-two
    /// boundaries (TCAM-friendly ranges; 0 disables snapping). Smaller
    /// values mean cheaper CRC expansions but coarser decision boundaries.
    pub snap_keep_bits: u8,
    /// TCAM budget one fuzzy table should stay under, in bits. Sibling
    /// tables of one pipeline level share a stage's 0.5 Mb TCAM, so the
    /// default leaves room for four neighbors.
    pub table_tcam_budget: u64,
    /// Fine-tune input-layer cluster centroids by backpropagation before
    /// table emission (§4.4), for models that support it (MLP-B). Off by
    /// default: it multiplies compile time by the fine-tuning epochs and
    /// §7.5 shows it matters mainly at shallow clustering depths.
    pub finetune_centroids: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            clustering_depth: 4,
            act_bits: 12,
            max_exact_entries: 4096,
            indirect_index: false,
            max_tree_samples: 4096,
            snap_keep_bits: 5,
            table_tcam_budget: 128 * 1024,
            finetune_centroids: false,
        }
    }
}

/// What the compiled pipeline outputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompileTarget {
    /// Tournament argmax over the final vector → predicted class field.
    Classify,
    /// Raw final vector in score fields (AutoEncoder reconstructions,
    /// regression heads).
    Scores,
}

/// Compilation metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CompileReport {
    /// Total MATs emitted.
    pub tables: usize,
    /// Fuzzy (range-matched) tables among them.
    pub fuzzy_tables: usize,
    /// Exactly enumerated tables among them.
    pub exact_tables: usize,
    /// Total table entries.
    pub entries: u64,
    /// Keyed lookups per processed input (excludes action-only tables).
    pub lookups_per_input: usize,
}

/// A compiled (not yet deployed) classifier pipeline.
#[derive(Clone, Debug)]
pub struct CompiledPipeline {
    /// The deployable switch program.
    pub program: SwitchProgram,
    /// Where input feature codes go, in feature order.
    pub input_fields: Vec<FieldId>,
    /// The final vector's fields.
    pub score_fields: Vec<FieldId>,
    /// Encoding of the score fields.
    pub score_format: NumFormat,
    /// The predicted-class field (`Classify` target only).
    pub predicted_field: Option<FieldId>,
    /// Compilation metrics.
    pub report: CompileReport,
}

/// Union-find over value ids for format grouping.
struct Groups {
    parent: Vec<usize>,
}

impl Groups {
    fn new(n: usize) -> Self {
        Groups { parent: (0..n).collect() }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Compiles a fused primitive program into a switch pipeline.
///
/// `train_inputs` are feature-code vectors (each element in `[0, 255]`)
/// drawn from the training split; they drive cluster fitting and
/// fixed-point calibration and are never needed at inference time.
///
/// Fails with [`PegasusError::EmptyTrainingSet`] when no calibration rows
/// are provided and [`PegasusError::CalibrationRange`] when they are not
/// 8-bit feature codes.
pub fn compile(
    prog: &PrimitiveProgram,
    train_inputs: &[Vec<f32>],
    opts: &CompileOptions,
    target: CompileTarget,
    name: &str,
) -> Result<CompiledPipeline, PegasusError> {
    compile_with_trees(prog, train_inputs, opts, target, name, &std::collections::HashMap::new())
}

/// [`compile`] with externally fitted (e.g. fine-tuned, §4.4) cluster trees
/// for specific Maps, keyed by the Map's input `ValueId` index. Maps without
/// an override fit their tree from the activation trace as usual.
pub fn compile_with_trees(
    prog: &PrimitiveProgram,
    train_inputs: &[Vec<f32>],
    opts: &CompileOptions,
    target: CompileTarget,
    name: &str,
    tree_overrides: &std::collections::HashMap<usize, ClusterTree>,
) -> Result<CompiledPipeline, PegasusError> {
    let mut layout = PhvLayout::new();
    let in_dim = prog.dim(prog.input);
    let input_fields: Vec<FieldId> =
        (0..in_dim).map(|i| layout.add_field(&format!("in{i}"), 8)).collect();
    let mut tables = Vec::new();
    let mut uniq = 0usize;
    let emitted = emit_into(
        prog,
        train_inputs,
        opts,
        target,
        name,
        tree_overrides,
        &mut layout,
        &mut tables,
        &mut uniq,
        &input_fields,
    )?;
    let mut program = SwitchProgram::new(name, layout);
    program.tables = tables;
    let mut report = emitted.report;
    report.tables = program.tables.len();
    program.keep_alive = emitted.score_fields.clone();
    if let Some(f) = emitted.predicted_field {
        program.keep_alive.push(f);
    }
    let (_, remap) = program.compact_phv(&input_fields);
    Ok(CompiledPipeline {
        program,
        input_fields: input_fields.iter().map(|&f| remap.get(f)).collect(),
        score_fields: emitted.score_fields.iter().map(|&f| remap.get(f)).collect(),
        score_format: emitted.score_format,
        predicted_field: emitted.predicted_field.map(|f| remap.get(f)),
        report,
    })
}

/// Result of emitting one primitive program into a shared layout.
#[derive(Clone, Debug)]
pub struct EmittedProgram {
    /// Fields holding the program's final vector.
    pub score_fields: Vec<FieldId>,
    /// Encoding of the score fields.
    pub score_format: NumFormat,
    /// Winner field for `Classify` targets.
    pub predicted_field: Option<FieldId>,
    /// Emission metrics (`tables` left at 0; the owner counts).
    pub report: CompileReport,
}

/// Emits a program's tables into an existing layout, reading its input from
/// `input_fields` (one 8-bit code field per input element). This is the
/// building block composite pipelines (per-flow window models) use to chain
/// several compiled programs in one switch program.
#[allow(clippy::too_many_arguments)]
pub fn emit_into(
    prog: &PrimitiveProgram,
    train_inputs: &[Vec<f32>],
    opts: &CompileOptions,
    target: CompileTarget,
    name: &str,
    tree_overrides: &std::collections::HashMap<usize, ClusterTree>,
    layout: &mut PhvLayout,
    tables: &mut Vec<Table>,
    uniq: &mut usize,
    input_fields: &[FieldId],
) -> Result<EmittedProgram, PegasusError> {
    if train_inputs.is_empty() {
        return Err(PegasusError::EmptyTrainingSet);
    }
    if input_fields.len() != prog.dim(prog.input) {
        return Err(PegasusError::FeatureCount {
            expected: prog.dim(prog.input),
            got: input_fields.len(),
        });
    }
    let n_values = prog.dims.len();

    // ---- 1. Activation trace (sampled). -------------------------------
    let stride = (train_inputs.len() / opts.max_tree_samples).max(1);
    let samples: Vec<&Vec<f32>> = train_inputs.iter().step_by(stride).collect();
    let mut acts: Vec<Vec<Vec<f32>>> = vec![Vec::new(); n_values];
    for x in &samples {
        let trace = prog.eval_trace(x);
        for (vid, val) in trace.into_iter().enumerate() {
            if let Some(v) = val {
                acts[vid].push(v);
            }
        }
    }

    // ---- 2. Format groups. ---------------------------------------------
    let mut groups = Groups::new(n_values);
    for op in &prog.ops {
        match op {
            Primitive::Reduce { inputs, output, .. } => {
                for v in inputs {
                    groups.union(v.0, output.0);
                }
            }
            Primitive::Partition { input, outputs, .. } => {
                for v in outputs {
                    groups.union(v.0, input.0);
                }
            }
            Primitive::Concat { inputs, output } => {
                for v in inputs {
                    groups.union(v.0, output.0);
                }
            }
            Primitive::Map { .. } => {}
        }
    }
    // Pool ranges per group root.
    let mut group_range: Vec<Option<(f32, f32)>> = vec![None; n_values];
    #[allow(clippy::needless_range_loop)] // vid indexes acts and the union-find
    for vid in 0..n_values {
        if acts[vid].is_empty() {
            continue;
        }
        let root = groups.find(vid);
        let (mut lo, mut hi) = group_range[root].unwrap_or((f32::MAX, f32::MIN));
        for row in &acts[vid] {
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        group_range[root] = Some((lo, hi));
    }
    let input_root = groups.find(prog.input.0);
    let mut formats: Vec<Option<NumFormat>> = vec![None; n_values];
    #[allow(clippy::needless_range_loop)] // vid indexes formats and the union-find
    for vid in 0..n_values {
        let root = groups.find(vid);
        let fmt = if root == input_root {
            let (lo, hi) = group_range[root].expect("input has activations");
            if !(0.0..=255.0).contains(&lo) || !(0.0..=255.0).contains(&hi) {
                return Err(PegasusError::CalibrationRange { lo, hi });
            }
            NumFormat::code8()
        } else {
            match group_range[root] {
                Some((lo, hi)) => NumFormat::from_range(lo, hi, opts.act_bits),
                None => continue, // dead value
            }
        };
        formats[vid] = Some(fmt);
    }

    // ---- 3. Emission. ---------------------------------------------------
    let mut value_fields: Vec<Option<Vec<FieldId>>> = vec![None; n_values];
    value_fields[prog.input.0] = Some(input_fields.to_vec());

    let mut report = CompileReport::default();
    let fresh = |layout: &mut PhvLayout, base: &str, bits: u8, uniq: &mut usize| -> FieldId {
        *uniq += 1;
        layout.add_field(&format!("{base}_{uniq}"), bits)
    };

    for op in &prog.ops {
        match op {
            Primitive::Partition { input, offsets, lens, outputs } => {
                let parent = value_fields[input.0].clone().expect("partition input materialized");
                for ((&o, &l), out) in offsets.iter().zip(lens.iter()).zip(outputs.iter()) {
                    value_fields[out.0] = Some(parent[o..o + l].to_vec());
                }
            }
            Primitive::Concat { inputs, output } => {
                let mut fields = Vec::new();
                let out_fmt = formats[output.0].expect("live concat");
                for v in inputs {
                    let f = formats[v.0].expect("live concat input");
                    assert_eq!(
                        (f.step, f.bias, f.bits),
                        (out_fmt.step, out_fmt.bias, out_fmt.bits),
                        "concat inputs must share a number format"
                    );
                    fields.extend(value_fields[v.0].clone().expect("concat input materialized"));
                }
                value_fields[output.0] = Some(fields);
            }
            Primitive::Map { input, f, output } => {
                let in_fields = value_fields[input.0].clone().expect("map input materialized");
                let in_fmt = formats[input.0].expect("live map input");
                let out_fmt = formats[output.0].expect("live map output");
                let out_dim = prog.dim(*output);
                let out_fields: Vec<FieldId> =
                    (0..out_dim).map(|_| fresh(layout, "m", out_fmt.bits, uniq)).collect();
                value_fields[output.0] = Some(out_fields.clone());

                let in_acts = &acts[input.0];
                assert!(!in_acts.is_empty(), "no activations for map input");
                // A key field narrower than the input format (e.g. 4-bit
                // window codes fed through the 8-bit code path) bounds the
                // reachable domain: raw keys are truncated to the field
                // width, so entries beyond it could never match.
                let in_bits: Vec<u8> =
                    in_fields.iter().map(|&fld| layout.def(fld).bits.min(in_fmt.bits)).collect();
                let domain_points: u64 = match f {
                    // Explicit tables declare their own (small) domains.
                    MapFn::Table { domains, .. } => domains.iter().map(|&d| d as u64).product(),
                    _ => in_bits.iter().fold(1u64, |acc, &b| acc.saturating_mul(1u64 << b.min(63))),
                };
                let tname = format!("{name}_t{}", tables.len());
                if (in_fields.len() <= 2 || matches!(f, MapFn::Table { .. }))
                    && domain_points <= opts.max_exact_entries as u64
                {
                    emit_exact_map(
                        tables,
                        &mut report,
                        f,
                        &in_fields,
                        &in_bits,
                        in_fmt,
                        &out_fields,
                        out_fmt,
                        &tname,
                    );
                } else {
                    emit_fuzzy_map(
                        tables,
                        &mut report,
                        f,
                        in_acts,
                        tree_overrides.get(&input.0),
                        opts,
                        layout,
                        uniq,
                        &in_fields,
                        in_fmt,
                        &out_fields,
                        out_fmt,
                        &tname,
                    );
                }
            }
            Primitive::Reduce { inputs, kind, output } => {
                let fmt = formats[output.0].expect("live reduce");
                let dim = prog.dim(*output);
                let out_fields: Vec<FieldId> =
                    (0..dim).map(|_| fresh(layout, "r", fmt.bits, uniq)).collect();
                value_fields[output.0] = Some(out_fields.clone());
                let in_field_sets: Vec<Vec<FieldId>> = inputs
                    .iter()
                    .map(|v| value_fields[v.0].clone().expect("reduce input materialized"))
                    .collect();
                let tname = format!("{name}_t{}", tables.len());
                emit_reduce(
                    tables,
                    &mut report,
                    layout,
                    uniq,
                    &in_field_sets,
                    *kind,
                    &out_fields,
                    fmt,
                    &tname,
                );
            }
        }
    }

    // ---- 4. Output head. -------------------------------------------------
    let score_fields = value_fields[prog.output.0].clone().expect("output materialized");
    let score_format = formats[prog.output.0].expect("output format");
    let predicted_field = match target {
        CompileTarget::Scores => None,
        CompileTarget::Classify => {
            Some(emit_argmax(tables, &mut report, layout, uniq, &score_fields, score_format, name))
        }
    };

    Ok(EmittedProgram { score_fields, score_format, predicted_field, report })
}

/// Emits an exactly enumerated map table (computation bypassing for small
/// domains — embedding lookups, single-code maps).
#[allow(clippy::too_many_arguments)]
fn emit_exact_map(
    tables: &mut Vec<Table>,
    report: &mut CompileReport,
    f: &MapFn,
    in_fields: &[FieldId],
    in_bits: &[u8],
    in_fmt: NumFormat,
    out_fields: &[FieldId],
    out_fmt: NumFormat,
    name: &str,
) {
    let mut t = Table::new(name, in_fields.iter().map(|&fld| (fld, MatchKind::Exact)).collect());
    let mut act = Action::new("set_out");
    for (j, &of) in out_fields.iter().enumerate() {
        act.ops.push(AluOp::Set { dst: of, a: Operand::Param(j) });
    }
    let ai = t.add_action(act);
    t.param_widths = vec![out_fmt.bits; out_fields.len()];

    // Per-dimension domains: explicit for `Table` functions, the key
    // field's reachable range otherwise (never wider than the field — a
    // key a narrow field cannot carry would be a dead entry).
    let dims: Vec<u64> = match f {
        MapFn::Table { domains, .. } => domains.iter().map(|&d| d as u64).collect(),
        _ => in_bits.iter().map(|&b| 1u64 << b).collect(),
    };
    let total: u64 = dims.iter().product();
    for combo in 0..total {
        let mut stored = vec![0u64; in_fields.len()];
        let mut rem = combo;
        for (i, &d) in dims.iter().enumerate().rev() {
            stored[i] = rem % d;
            rem /= d;
        }
        let real: Vec<f32> = stored.iter().map(|&s| in_fmt.to_real(s as i64)).collect();
        let out = f.apply(&real);
        let data: Vec<i64> = out.iter().map(|&v| out_fmt.to_stored(v)).collect();
        t.add_entry(TableEntry {
            keys: stored.iter().map(|&s| KeyPart::Exact(s)).collect(),
            priority: 0,
            action_idx: ai,
            action_data: data,
        });
    }
    if let Some(first) = t.entries.first() {
        t.default_action = Some((first.action_idx, first.action_data.clone()));
    }
    report.entries += total;
    report.exact_tables += 1;
    report.lookups_per_input += 1;
    tables.push(t);
}

/// Emits a fuzzy-matched map: range rules from the clustering tree's leaf
/// boxes, action data = `f(centroid)`.
#[allow(clippy::too_many_arguments)]
fn emit_fuzzy_map(
    tables: &mut Vec<Table>,
    report: &mut CompileReport,
    f: &MapFn,
    in_acts: &[Vec<f32>],
    tree_override: Option<&ClusterTree>,
    opts: &CompileOptions,
    layout: &mut PhvLayout,
    uniq: &mut usize,
    in_fields: &[FieldId],
    in_fmt: NumFormat,
    out_fields: &[FieldId],
    out_fmt: NumFormat,
    name: &str,
) {
    let tree = match tree_override {
        Some(t) => t.clone(),
        None => ClusterTree::fit(in_acts, opts.clustering_depth),
    };
    // Thresholds into stored space (monotone per feature).
    let exact_tree = tree.map_thresholds(|_, t| {
        ((t / in_fmt.step).round() as i64 + in_fmt.bias).clamp(0, in_fmt.max_stored()) as f32
    });
    // Snap to power-of-two boundaries for cheap CRC expansion. Snapping
    // may not reroute the data: a threshold sitting in a tight gap of the
    // activation distribution (or next to a density spike) must stay put,
    // so granularity refines adaptively until fewer than 2% of training
    // points change leaves; if even the finest snap reroutes, thresholds
    // stay exact and the map simply pays more TCAM.
    let stored_probe: Vec<Vec<f32>> = in_acts
        .iter()
        .take(512)
        .map(|x| x.iter().map(|&v| in_fmt.to_stored(v) as f32).collect())
        .collect();
    let reroute_frac = |candidate: &ClusterTree| -> f64 {
        if stored_probe.is_empty() {
            return 0.0;
        }
        let n =
            stored_probe.iter().filter(|s| exact_tree.index_of(s) != candidate.index_of(s)).count();
        n as f64 / stored_probe.len() as f64
    };
    // Estimated TCAM bits of a candidate tree (CRC cross-product expansion
    // over its leaf boxes).
    let domain_for_cost: Vec<(u64, u64)> = vec![(0, in_fmt.max_stored() as u64); in_fields.len()];
    let key_bits = in_fmt.bits as u64 * in_fields.len() as u64;
    let tcam_cost = |t: &ClusterTree| -> u64 {
        let mut rules: u64 = 0;
        for b in t.leaf_boxes(&domain_for_cost) {
            let mut per: u64 = 1;
            for &(lo, hi) in &b.ranges {
                per = per.saturating_mul(
                    pegasus_switch::range_to_ternary(lo, hi, in_fmt.bits).len() as u64,
                );
            }
            rules = rules.saturating_add(per);
        }
        rules.saturating_mul(2 * key_bits)
    };
    // Candidate selection over snap granularities (coarse to fine, plus
    // exact): among candidates whose CRC expansion fits one TCAM stage,
    // take the most faithful (fewest rerouted probes); when nothing fits a
    // stage, take the cheapest — deployability over marginal fidelity, the
    // paper's own trade. Candidates rerouting more than 5% of probes are
    // only chosen when every fitting alternative is worse.
    let mut stored_tree = exact_tree.clone();
    if opts.snap_keep_bits > 0 {
        let budget = opts.table_tcam_budget;
        let mut candidates: Vec<(f64, u64, ClusterTree)> = Vec::new();
        for keep in 3..=in_fmt.bits.saturating_sub(1) {
            let candidate = exact_tree
                .map_thresholds(|_, t| snap_threshold(t as i64, in_fmt.bits, keep) as f32);
            let frac = reroute_frac(&candidate);
            let cost = tcam_cost(&candidate);
            candidates.push((frac, cost, candidate));
            if frac <= 0.02 && cost <= budget {
                break; // good enough; finer snaps only cost more TCAM
            }
        }
        candidates.push((0.0, tcam_cost(&exact_tree), exact_tree.clone()));
        // Coarse-to-fine order: the first acceptable candidate is also the
        // TCAM-cheapest acceptable one (sibling tables share each stage's
        // TCAM, so cheap beats marginally-more-faithful).
        let chosen = candidates
            .iter()
            .find(|(frac, cost, _)| *cost <= budget && *frac <= 0.02)
            .or_else(|| candidates.iter().find(|(frac, cost, _)| *cost <= budget && *frac <= 0.05))
            .or_else(|| {
                candidates
                    .iter()
                    .filter(|(_, cost, _)| *cost <= budget)
                    .min_by(|a, b| a.0.partial_cmp(&b.0).expect("frac is finite"))
            })
            .or_else(|| candidates.iter().min_by_key(|(_, cost, _)| *cost));
        if let Some((_, _, t)) = chosen {
            stored_tree = t.clone();
        }
    }
    let domain: Vec<(u64, u64)> = vec![(0, in_fmt.max_stored() as u64); in_fields.len()];
    let boxes = stored_tree.leaf_boxes(&domain);

    // Per-leaf output words.
    let leaf_data: Vec<Vec<i64>> = (0..tree.leaves())
        .map(|li| {
            let out = f.apply(tree.centroid(li));
            out.iter().map(|&v| out_fmt.to_stored(v)).collect()
        })
        .collect();

    if opts.indirect_index {
        // Table A: ranges -> fuzzy index.
        let idx_bits = tree.index_bits();
        let idx_field = {
            *uniq += 1;
            layout.add_field(&format!("fidx_{uniq}"), idx_bits)
        };
        let mut ta = Table::new(
            &format!("{name}_fuzzy"),
            in_fields.iter().map(|&fld| (fld, MatchKind::Range)).collect(),
        );
        let set_idx = ta.add_action(
            Action::new("set_idx").with(AluOp::Set { dst: idx_field, a: Operand::Param(0) }),
        );
        ta.param_widths = vec![idx_bits];
        for b in &boxes {
            ta.add_entry(TableEntry {
                keys: b.ranges.iter().map(|&(lo, hi)| KeyPart::Range { lo, hi }).collect(),
                priority: 0,
                action_idx: set_idx,
                action_data: vec![b.index as i64],
            });
        }
        // Boxes partition the domain; the default exists so the output is
        // written unconditionally (enables PHV container reuse).
        ta.default_action = Some((set_idx, vec![0]));
        report.entries += boxes.len() as u64;
        report.lookups_per_input += 1;
        tables.push(ta);

        // Table B: index -> output words (exact SRAM).
        let mut tb = Table::new(&format!("{name}_map"), vec![(idx_field, MatchKind::Exact)]);
        let mut act = Action::new("set_out");
        for (j, &of) in out_fields.iter().enumerate() {
            act.ops.push(AluOp::Set { dst: of, a: Operand::Param(j) });
        }
        let ai = tb.add_action(act);
        tb.param_widths = vec![out_fmt.bits; out_fields.len()];
        for (li, data) in leaf_data.iter().enumerate() {
            tb.add_entry(TableEntry {
                keys: vec![KeyPart::Exact(li as u64)],
                priority: 0,
                action_idx: ai,
                action_data: data.clone(),
            });
        }
        report.entries += leaf_data.len() as u64;
        report.lookups_per_input += 1;
        report.fuzzy_tables += 1;
        tables.push(tb);
    } else {
        // Direct: ranges -> output words.
        let mut t =
            Table::new(name, in_fields.iter().map(|&fld| (fld, MatchKind::Range)).collect());
        let mut act = Action::new("set_out");
        for (j, &of) in out_fields.iter().enumerate() {
            act.ops.push(AluOp::Set { dst: of, a: Operand::Param(j) });
        }
        let ai = t.add_action(act);
        t.param_widths = vec![out_fmt.bits; out_fields.len()];
        for b in &boxes {
            t.add_entry(TableEntry {
                keys: b.ranges.iter().map(|&(lo, hi)| KeyPart::Range { lo, hi }).collect(),
                priority: 0,
                action_idx: ai,
                action_data: leaf_data[b.index].clone(),
            });
        }
        // Boxes partition the domain; the default exists so the outputs are
        // written unconditionally (enables PHV container reuse).
        t.default_action = Some((ai, leaf_data[0].clone()));
        report.entries += boxes.len() as u64;
        report.fuzzy_tables += 1;
        report.lookups_per_input += 1;
        tables.push(t);
    }
}

/// Snaps a stored-space threshold to the nearest `x*2^s - 1` boundary so
/// the ranges `[.., t]` / `[t+1, ..]` decompose into few ternary rules.
/// Keeps `keep_bits` significant bits; 0 disables snapping.
pub(crate) fn snap_threshold(stored: i64, field_bits: u8, keep_bits: u8) -> i64 {
    if keep_bits == 0 || field_bits <= keep_bits {
        return stored;
    }
    let g = 1i64 << (field_bits - keep_bits);
    // Boundary form: t = k*g - 1 (so x <= t tests only the top bits).
    let k = ((stored + 1) as f64 / g as f64).round() as i64;
    let max = (1i64 << field_bits) - 1;
    (k * g - 1).clamp(0, max)
}

/// Reduction-tree fan-in. Tofino stateless ALU pairs combine into 3-operand
/// adds within one stage, so each level folds up to three lanes.
pub(crate) const REDUCE_FAN_IN: usize = 3;

/// Emits a reduction tree of action-only tables with [`REDUCE_FAN_IN`]-way
/// levels. Sum trees subtract the bias correction `(k-1)*bias` at the final
/// level.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_reduce(
    tables: &mut Vec<Table>,
    report: &mut CompileReport,
    layout: &mut PhvLayout,
    uniq: &mut usize,
    inputs: &[Vec<FieldId>],
    kind: ReduceKind,
    out_fields: &[FieldId],
    fmt: NumFormat,
    name: &str,
) {
    let k = inputs.len();
    let dim = out_fields.len();
    let correction = if kind == ReduceKind::Sum { (k as i64 - 1) * fmt.bias } else { 0 };
    // Headroom for unsummed partials; max never grows beyond its inputs.
    let head_bits = match kind {
        ReduceKind::Sum => {
            (fmt.bits as u32 + (usize::BITS - (k - 1).leading_zeros()) + 1).min(48) as u8
        }
        ReduceKind::Max => fmt.bits,
    };
    let mut level: Vec<Vec<FieldId>> = inputs.to_vec();
    let mut level_idx = 0;
    while level.len() > 1 {
        let last_level = level.len() <= REDUCE_FAN_IN;
        let mut next: Vec<Vec<FieldId>> = Vec::new();
        let mut t = Table::new(&format!("{name}_red{level_idx}"), vec![]);
        let mut act = Action::new("reduce_level");
        for group in level.chunks(REDUCE_FAN_IN) {
            if group.len() == 1 {
                next.push(group[0].clone());
                continue;
            }
            let dsts: Vec<FieldId> = if last_level {
                out_fields.to_vec()
            } else {
                (0..dim)
                    .map(|_| {
                        *uniq += 1;
                        layout.add_field(&format!("acc_{uniq}"), head_bits)
                    })
                    .collect()
            };
            for j in 0..dim {
                let combine = |a: Operand, b: Operand, dst: FieldId| match kind {
                    ReduceKind::Sum => AluOp::Add { dst, a, b },
                    ReduceKind::Max => AluOp::Max { dst, a, b },
                };
                act.ops.push(combine(
                    Operand::Field(group[0][j]),
                    Operand::Field(group[1][j]),
                    dsts[j],
                ));
                for lane in &group[2..] {
                    act.ops.push(combine(
                        Operand::Field(dsts[j]),
                        Operand::Field(lane[j]),
                        dsts[j],
                    ));
                }
                // The bias correction folds into the final level as one more
                // ALU pass on the destination.
                if last_level && correction != 0 {
                    act.ops.push(AluOp::Sub {
                        dst: dsts[j],
                        a: Operand::Field(dsts[j]),
                        b: Operand::Const(correction),
                    });
                }
            }
            next.push(dsts);
        }
        t.default_action = Some((t.add_action(act), vec![]));
        tables.push(t);
        level = next;
        level_idx += 1;
    }
    // Degenerate single-input reduce (k == 1): copy with correction.
    let final_fields = level.remove(0);
    if final_fields != out_fields {
        let mut t = Table::new(&format!("{name}_redfix"), vec![]);
        let mut act = Action::new("fixup");
        for j in 0..dim {
            act.ops.push(AluOp::Sub {
                dst: out_fields[j],
                a: Operand::Field(final_fields[j]),
                b: Operand::Const(correction),
            });
        }
        t.default_action = Some((t.add_action(act), vec![]));
        tables.push(t);
    }
    let _ = report;
}

/// Emits the tournament argmax over `score_fields`; returns the winner-index
/// field. Comparisons use sign-bit ternary matches on wrap-around
/// differences, `2 * ceil(log2(k))` stages for `k` classes.
pub(crate) fn emit_argmax(
    tables: &mut Vec<Table>,
    report: &mut CompileReport,
    layout: &mut PhvLayout,
    uniq: &mut usize,
    score_fields: &[FieldId],
    fmt: NumFormat,
    name: &str,
) -> FieldId {
    // Candidates: (value field, index field or constant index).
    enum Idx {
        Const(i64),
        Field(FieldId),
    }
    let mut candidates: Vec<(FieldId, Idx)> =
        score_fields.iter().enumerate().map(|(i, &fld)| (fld, Idx::Const(i as i64))).collect();
    let diff_bits = fmt.bits + 1;
    let mut round = 0;
    while candidates.len() > 1 {
        // Stage 1: all pair differences in one action-only table.
        let mut diff_table = Table::new(&format!("{name}_amx_d{round}"), vec![]);
        let mut diff_act = Action::new("diffs");
        let mut pair_diffs: Vec<FieldId> = Vec::new();
        for pair in candidates.chunks(2) {
            if let [(va, _), (vb, _)] = pair {
                *uniq += 1;
                let d = layout.add_field(&format!("amxd_{uniq}"), diff_bits);
                diff_act.ops.push(AluOp::Sub {
                    dst: d,
                    a: Operand::Field(*va),
                    b: Operand::Field(*vb),
                });
                pair_diffs.push(d);
            }
        }
        diff_table.default_action = Some((diff_table.add_action(diff_act), vec![]));
        tables.push(diff_table);

        // Stage 2: per-pair decision tables (independent; same stage).
        let mut next: Vec<(FieldId, Idx)> = Vec::new();
        let mut di = 0;
        let old = std::mem::take(&mut candidates);
        for pair in old.into_iter().collect::<Vec<_>>().chunks_mut(2) {
            match pair {
                [a, b] => {
                    let d = pair_diffs[di];
                    di += 1;
                    *uniq += 1;
                    let win_val = layout.add_field(&format!("amxv_{uniq}"), fmt.bits);
                    *uniq += 1;
                    let win_idx = layout.add_field(&format!("amxi_{uniq}"), 8);
                    let mut t = Table::new(
                        &format!("{name}_amx_c{round}_{di}"),
                        vec![(d, MatchKind::Ternary)],
                    );
                    // Entry: sign bit set -> b wins.
                    let mut b_wins = Action::new("b_wins");
                    b_wins.ops.push(AluOp::Set { dst: win_val, a: Operand::Field(b.0) });
                    b_wins.ops.push(match &b.1 {
                        Idx::Const(c) => AluOp::Set { dst: win_idx, a: Operand::Const(*c) },
                        Idx::Field(f) => AluOp::Set { dst: win_idx, a: Operand::Field(*f) },
                    });
                    let bi = t.add_action(b_wins);
                    // Default: a wins.
                    let mut a_wins = Action::new("a_wins");
                    a_wins.ops.push(AluOp::Set { dst: win_val, a: Operand::Field(a.0) });
                    a_wins.ops.push(match &a.1 {
                        Idx::Const(c) => AluOp::Set { dst: win_idx, a: Operand::Const(*c) },
                        Idx::Field(f) => AluOp::Set { dst: win_idx, a: Operand::Field(*f) },
                    });
                    let ai = t.add_action(a_wins);
                    t.default_action = Some((ai, vec![]));
                    let sign = 1u64 << (diff_bits - 1);
                    t.add_entry(TableEntry {
                        keys: vec![KeyPart::Ternary(TernaryKey { value: sign, mask: sign })],
                        priority: 0,
                        action_idx: bi,
                        action_data: vec![],
                    });
                    report.entries += 1;
                    report.lookups_per_input += 1;
                    tables.push(t);
                    next.push((win_val, Idx::Field(win_idx)));
                }
                [a] => {
                    // Odd one passes through; materialize a constant index
                    // into a field if still constant.
                    match &a.1 {
                        Idx::Const(c) => {
                            *uniq += 1;
                            let idx_f = layout.add_field(&format!("amxi_{uniq}"), 8);
                            let mut t = Table::new(&format!("{name}_amx_p{round}"), vec![]);
                            let act = Action::new("pass")
                                .with(AluOp::Set { dst: idx_f, a: Operand::Const(*c) });
                            t.default_action = Some((t.add_action(act), vec![]));
                            tables.push(t);
                            next.push((a.0, Idx::Field(idx_f)));
                        }
                        Idx::Field(f) => next.push((a.0, Idx::Field(*f))),
                    }
                }
                _ => unreachable!(),
            }
        }
        candidates = next;
        round += 1;
    }
    match candidates.remove(0).1 {
        Idx::Field(f) => f,
        Idx::Const(c) => {
            // Single-class program: constant predictor.
            *uniq += 1;
            let idx_f = layout.add_field(&format!("amxi_{uniq}"), 8);
            let mut t = Table::new(&format!("{name}_amx_const"), vec![]);
            let act = Action::new("const").with(AluOp::Set { dst: idx_f, a: Operand::Const(c) });
            t.default_action = Some((t.add_action(act), vec![]));
            tables.push(t);
            idx_f
        }
    }
}

// --- serde (control-daemon artifact format) ----------------------------

serde::impl_serde_struct!(CompileReport {
    tables,
    fuzzy_tables,
    exact_tables,
    entries,
    lookups_per_input,
});
serde::impl_serde_struct!(CompiledPipeline {
    program,
    input_fields,
    score_fields,
    score_format,
    predicted_field,
    report,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::fuse_basic;
    use pegasus_nn::Tensor;
    use pegasus_switch::SwitchConfig;
    use rand::Rng;
    use rand::SeedableRng;

    /// A linear scorer: class = argmax of W^T x with obvious structure.
    fn toy_program() -> PrimitiveProgram {
        // 4 inputs, 2 classes: class0 score = x0 + x1, class1 score = x2 + x3.
        let mut p = PrimitiveProgram::new(4);
        let segs = p.partition_strided(p.input, 2, 2);
        let w0 = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2]);
        let w1 = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0], &[2, 2]);
        let m0 = p.map(segs[0], MapFn::MatVec { weight: w0, bias: vec![0.0, 0.0] });
        let m1 = p.map(segs[1], MapFn::MatVec { weight: w1, bias: vec![0.0, 0.0] });
        let out = p.sum_reduce(&[m0, m1]);
        p.set_output(out);
        p
    }

    fn toy_inputs(n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..4).map(|_| rng.gen_range(0..256) as f32).collect()).collect()
    }

    #[test]
    fn compiled_classifier_matches_reference_argmax() {
        let mut prog = toy_program();
        fuse_basic(&mut prog);
        let train = toy_inputs(2000, 1);
        let opts = CompileOptions { clustering_depth: 6, ..Default::default() };
        let c = compile(&prog, &train, &opts, CompileTarget::Classify, "toy").expect("compiles");
        let loaded = c.program.clone().deploy(&SwitchConfig::tofino2()).expect("deploys");

        let test = toy_inputs(300, 2);
        let mut agree = 0;
        for x in &test {
            let reference = prog.eval(x);
            let ref_class = if reference[0] >= reference[1] { 0 } else { 1 };
            let inputs: Vec<(FieldId, i64)> =
                c.input_fields.iter().zip(x.iter()).map(|(&f, &v)| (f, v as i64)).collect();
            let phv = loaded.process(&inputs);
            let pred = phv.get(c.predicted_field.expect("classify target"));
            if pred == ref_class {
                agree += 1;
            }
        }
        // Fuzzy matching approximates; near-tie inputs may flip.
        assert!(agree >= 270, "agreement {agree}/300");
    }

    #[test]
    fn scores_target_decodes_reference_values() {
        let mut prog = toy_program();
        fuse_basic(&mut prog);
        let train = toy_inputs(2000, 3);
        let opts = CompileOptions { clustering_depth: 7, ..Default::default() };
        let c = compile(&prog, &train, &opts, CompileTarget::Scores, "toy").expect("compiles");
        assert!(c.predicted_field.is_none());
        let loaded = c.program.clone().deploy(&SwitchConfig::tofino2()).unwrap();
        let test = toy_inputs(100, 4);
        let mut total_err = 0.0f32;
        for x in &test {
            let reference = prog.eval(x);
            let inputs: Vec<(FieldId, i64)> =
                c.input_fields.iter().zip(x.iter()).map(|(&f, &v)| (f, v as i64)).collect();
            let phv = loaded.process(&inputs);
            for (j, &sf) in c.score_fields.iter().enumerate() {
                let got = c.score_format.to_real(phv.get(sf));
                total_err += (got - reference[j]).abs() / reference[j].abs().max(1.0);
            }
        }
        let mean_rel_err = total_err / (100.0 * 2.0);
        assert!(mean_rel_err < 0.10, "mean relative error {mean_rel_err}");
    }

    #[test]
    fn exact_tables_used_for_single_code_maps() {
        // Map over a 1-dim 8-bit code: must enumerate, not cluster.
        let mut p = PrimitiveProgram::new(2);
        let segs = p.partition(p.input, &[0, 1], &[1, 1]);
        let m0 = p.map(segs[0], MapFn::Affine { scale: vec![2.0], shift: vec![1.0] });
        let m1 = p.map(segs[1], MapFn::Affine { scale: vec![-1.0], shift: vec![0.0] });
        let out = p.sum_reduce(&[m0, m1]);
        p.set_output(out);
        let train: Vec<Vec<f32>> =
            (0..512).map(|i| vec![(i % 256) as f32, ((i * 7) % 256) as f32]).collect();
        let c = compile(&p, &train, &CompileOptions::default(), CompileTarget::Scores, "ex")
            .expect("compiles");
        assert_eq!(c.report.exact_tables, 2);
        assert_eq!(c.report.fuzzy_tables, 0);
        // Exact tables make the pipeline error bounded by quantization only.
        let loaded = c.program.clone().deploy(&SwitchConfig::tofino2()).unwrap();
        for x in [[0.0f32, 0.0], [255.0, 255.0], [13.0, 200.0]] {
            let reference = p.eval(&x);
            let inputs: Vec<(FieldId, i64)> =
                c.input_fields.iter().zip(x.iter()).map(|(&f, &v)| (f, v as i64)).collect();
            let phv = loaded.process(&inputs);
            let got = c.score_format.to_real(phv.get(c.score_fields[0]));
            assert!(
                (got - reference[0]).abs() <= 3.0 * c.score_format.step,
                "x={x:?}: got {got} want {}",
                reference[0]
            );
        }
    }

    #[test]
    fn indirect_mode_emits_index_tables() {
        let mut prog = toy_program();
        fuse_basic(&mut prog);
        let train = toy_inputs(1000, 5);
        let direct = compile(&prog, &train, &CompileOptions::default(), CompileTarget::Scores, "d")
            .expect("compiles");
        let indirect = compile(
            &prog,
            &train,
            &CompileOptions { indirect_index: true, ..Default::default() },
            CompileTarget::Scores,
            "i",
        )
        .expect("compiles");
        assert!(indirect.report.tables > direct.report.tables);
        assert!(indirect.report.lookups_per_input > direct.report.lookups_per_input);
    }

    #[test]
    fn deeper_clustering_improves_fidelity() {
        let mut prog = toy_program();
        fuse_basic(&mut prog);
        let train = toy_inputs(3000, 6);
        let test = toy_inputs(200, 7);
        let mut errs = Vec::new();
        for depth in [2usize, 5, 8] {
            let opts = CompileOptions { clustering_depth: depth, ..Default::default() };
            let c =
                compile(&prog, &train, &opts, CompileTarget::Scores, "depth").expect("compiles");
            let loaded = c.program.clone().deploy(&SwitchConfig::tofino2()).unwrap();
            let mut err = 0.0f64;
            for x in &test {
                let reference = prog.eval(x);
                let inputs: Vec<(FieldId, i64)> =
                    c.input_fields.iter().zip(x.iter()).map(|(&f, &v)| (f, v as i64)).collect();
                let phv = loaded.process(&inputs);
                for (j, &sf) in c.score_fields.iter().enumerate() {
                    err += (c.score_format.to_real(phv.get(sf)) - reference[j]).abs() as f64;
                }
            }
            errs.push(err);
        }
        assert!(errs[0] > errs[1] && errs[1] > errs[2], "{errs:?}");
    }

    #[test]
    fn report_counts_are_consistent() {
        let mut prog = toy_program();
        fuse_basic(&mut prog);
        let train = toy_inputs(1000, 8);
        let c = compile(&prog, &train, &CompileOptions::default(), CompileTarget::Classify, "r")
            .expect("compiles");
        assert_eq!(c.report.tables, c.program.tables.len());
        assert!(c.report.entries > 0);
        assert!(c.report.fuzzy_tables + c.report.exact_tables >= 2);
    }
}

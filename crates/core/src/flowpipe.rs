//! Per-flow windowed inference pipelines (§7.3).
//!
//! Models that consume a window of W packets cannot hold the whole window
//! in the PHV — CNN-L's 3840-bit input exceeds it outright. Pegasus instead
//! *distributes inference across the window's packets*: each arriving packet
//! is reduced on the spot to a small per-packet code (a fuzzy index from a
//! per-packet extractor network, or quantized length/IPD codes), the last
//! `W-1` codes live in per-flow registers, and the window model fires on
//! every packet over `[stored codes, current code]`.
//!
//! The emitted switch program contains, in dependency order:
//!
//! 1. a timestamp RMW (`last_ts` register) and IPD computation;
//! 2. the length-shift and leading-bit log-IPD quantizers (bit-exact with
//!    `pegasus_net::features`);
//! 3. optionally, a compiled per-packet extractor sub-program plus a fuzzy
//!    table reducing its output vector to a `code_bits`-wide packet index;
//! 4. shift-insert RMWs packing the code window into 32-bit registers (the
//!    paper's footnote-2 packing of sub-byte codes into supported widths);
//! 5. unpacking shifts, a saturating per-flow packet counter and the
//!    window-full validity check;
//! 6. the compiled window model over the `W * streams` unpacked codes.

use crate::compile::{emit_into, CompileOptions, CompileReport, CompileTarget, EmittedProgram};
use crate::error::PegasusError;
use crate::fuzzy::ClusterTree;
use crate::numformat::NumFormat;
use crate::primitives::PrimitiveProgram;
use pegasus_switch::{
    Action, AluOp, FieldId, KeyPart, LoadedProgram, MatchKind, Operand, PhvLayout, RegFile, RegId,
    RegisterArray, ResourceReport, SwitchConfig, SwitchProgram, Table, TableEntry, TernaryKey,
};
use std::collections::HashMap;

/// Per-packet code source for the window.
pub enum PacketCodes {
    /// Quantized (length, IPD) pair per packet — two 8-bit streams
    /// (RNN-B / CNN-B / CNN-M / AutoEncoder style).
    LenIpd,
    /// A per-packet extractor network reduced to one fuzzy index of
    /// `code_bits` (CNN-L style). The extractor consumes 8-bit feature
    /// codes (e.g. 60 payload bytes); with `ipd_input` its *last* input
    /// element is wired to the on-switch IPD code, so time information is
    /// folded into the stored index rather than stored separately — which
    /// is how the paper reaches 44 stateful bits per flow (§7.3).
    Extractor {
        /// The (fused) extractor program.
        program: PrimitiveProgram,
        /// Training inputs for the extractor compilation (including the
        /// IPD column when `ipd_input` is set).
        train: Vec<Vec<f32>>,
        /// Tree over the extractor's output vector producing the index.
        tree: ClusterTree,
        /// Index width in bits (4 or 8 in the paper's variants).
        code_bits: u8,
        /// Feed the quantized IPD code as the extractor's last input.
        ipd_input: bool,
    },
}

/// Specification of a windowed flow pipeline.
pub struct FlowPipelineSpec {
    /// Program name.
    pub name: String,
    /// Window size W (the paper uses 8).
    pub window: usize,
    /// Where per-packet codes come from.
    pub codes: PacketCodes,
    /// The window model over `window * streams` codes, oldest first
    /// (stream-major per packet: `[p0_s0, p0_s1, p1_s0, ...]`).
    pub window_program: PrimitiveProgram,
    /// Training inputs for the window model compilation (same layout).
    pub window_train: Vec<Vec<f32>>,
    /// Fine-tuned tree overrides for the window model, keyed by Map input
    /// value id (see `compile_with_trees`).
    pub window_tree_overrides: HashMap<usize, ClusterTree>,
    /// Compile options for both sub-programs.
    pub opts: CompileOptions,
    /// Classify or Scores.
    pub target: CompileTarget,
    /// log2 of per-flow register slots (hash table size).
    pub flow_slots_log2: u8,
    /// Bits of the truncated timestamp register (0 disables IPD tracking:
    /// the Figure 7 "28-bit, no IPD" variant).
    pub ts_bits: u8,
}

/// A built flow pipeline: program + field handles + accounting.
#[derive(Clone)]
pub struct FlowPipeline {
    /// The deployable program.
    pub program: SwitchProgram,
    /// Packet wire length input (16 bits).
    pub len_field: FieldId,
    /// Packet timestamp input, in 64 µs units (truncated).
    pub ts_field: FieldId,
    /// Flow hash input (register index).
    pub hash_field: FieldId,
    /// Extractor feature-code inputs (empty for `LenIpd`).
    pub extractor_fields: Vec<FieldId>,
    /// Predicted class field (Classify target).
    pub predicted_field: Option<FieldId>,
    /// Window model score fields.
    pub score_fields: Vec<FieldId>,
    /// Score encoding.
    pub score_format: NumFormat,
    /// 1 once the flow has seen a full window.
    pub valid_field: FieldId,
    /// Logical stateful bits per flow as the paper accounts them
    /// (codes + timestamp; the 8-bit warm-up counter is reported separately).
    pub stateful_bits_per_flow: u64,
    /// Emission metrics of extractor + window model.
    pub report: CompileReport,
}

/// Number of code streams per packet for a spec.
fn stream_info(codes: &PacketCodes) -> (usize, u8, bool) {
    match codes {
        PacketCodes::LenIpd => (2, 8, true),
        PacketCodes::Extractor { code_bits, ipd_input, .. } => (1, *code_bits, *ipd_input),
    }
}

/// Builds the switch program for a windowed flow pipeline.
pub fn build_flow_pipeline(spec: &FlowPipelineSpec) -> Result<FlowPipeline, PegasusError> {
    let w = spec.window;
    assert!(w >= 2, "window must hold at least two packets");
    let (streams, code_bits, needs_ipd) = stream_info(&spec.codes);
    assert_eq!(
        spec.window_program.dim(spec.window_program.input),
        w * streams,
        "window program input must be window * streams codes"
    );
    let hash_bits = spec.flow_slots_log2;
    let slots = 1usize << hash_bits;

    let mut layout = PhvLayout::new();
    let len_field = layout.add_field("pkt_len", 16);
    let ts_field = layout.add_field("ts64us", 32);
    let hash_field = layout.add_field("flow_hash", hash_bits);
    let mut tables: Vec<Table> = Vec::new();
    let mut registers: Vec<RegisterArray> = Vec::new();
    let mut uniq = 0usize;
    let mut report = CompileReport::default();

    // ---- 1. Timestamp + IPD. -------------------------------------------
    let ipd_code_field = layout.add_field("ipd_code", 8);
    if spec.ts_bits > 0 && needs_ipd {
        let last_ts = RegId(registers.len());
        registers.push(RegisterArray::new("last_ts", 32, slots));
        let old_ts = layout.add_field("old_ts", 32);
        let ipd_raw = layout.add_field("ipd_raw", 32);
        let mut t = Table::new("ts_rmw", vec![]);
        let mut act = Action::new("ts");
        act.ops.push(AluOp::RegReadWrite {
            dst: old_ts,
            reg: last_ts,
            index: Operand::Field(hash_field),
            a: Operand::Field(ts_field),
        });
        act.ops.push(AluOp::Sub {
            dst: ipd_raw,
            a: Operand::Field(ts_field),
            b: Operand::Field(old_ts),
        });
        t.default_action = Some((t.add_action(act), vec![]));
        tables.push(t);
        emit_ipd_quantizer(&mut tables, &mut report, ipd_raw, ipd_code_field);
    }

    // ---- 2. Length quantizer (one shift). ------------------------------
    let len_code_field = layout.add_field("len_code", 8);
    {
        let mut t = Table::new("len_quant", vec![]);
        let act = Action::new("shr3").with(AluOp::Shr {
            dst: len_code_field,
            a: Operand::Field(len_field),
            amount: 3,
        });
        t.default_action = Some((t.add_action(act), vec![]));
        tables.push(t);
    }

    // ---- 3. Per-packet code(s). ------------------------------------------
    let mut extractor_fields = Vec::new();
    let cur_codes: Vec<FieldId> = match &spec.codes {
        PacketCodes::LenIpd => vec![len_code_field, ipd_code_field],
        PacketCodes::Extractor { program, train, tree, code_bits, ipd_input } => {
            let in_dim = program.dim(program.input);
            let n_ext = if *ipd_input { in_dim - 1 } else { in_dim };
            extractor_fields =
                (0..n_ext).map(|i| layout.add_field(&format!("exb{i}"), 8)).collect();
            let mut ext_inputs = extractor_fields.clone();
            if *ipd_input {
                ext_inputs.push(ipd_code_field);
            }
            let emitted = emit_into(
                program,
                train,
                &spec.opts,
                CompileTarget::Scores,
                &format!("{}_ext", spec.name),
                &HashMap::new(),
                &mut layout,
                &mut tables,
                &mut uniq,
                &ext_inputs,
            )?;
            accumulate(&mut report, &emitted.report);
            // Fuzzy table: extractor scores -> packet index.
            let idx_field = layout.add_field("pkt_idx", *code_bits);
            emit_index_table(
                &mut tables,
                &mut report,
                tree,
                &emitted,
                idx_field,
                &format!("{}_pidx", spec.name),
            );
            vec![idx_field]
        }
    };
    assert_eq!(cur_codes.len(), streams);

    // ---- 4. History registers (packed shift-insert). ---------------------
    // Each stream packs its W-1 history codes into ceil((W-1)*bits/32)
    // 32-bit registers. Unpacked old values ++ current code form the window.
    let mut window_fields: Vec<FieldId> = Vec::new(); // oldest-first, stream-major
    let mut per_stream_unpacked: Vec<Vec<FieldId>> = Vec::new();
    for (s, &cur) in cur_codes.iter().enumerate() {
        let hist = w - 1;
        let codes_per_reg = (32 / code_bits as usize).max(1);
        let regs_needed = hist.div_ceil(codes_per_reg);
        let mut old_fields: Vec<FieldId> = Vec::new(); // newest-reg first
        let mut carry: Option<FieldId> = None;
        // Registers r_0 .. r_{m-1}: r_{m-1} holds the newest codes. Insert
        // into the newest first; its evicted top code becomes the next
        // register's inserted value.
        for r in (0..regs_needed).rev() {
            let reg = RegId(registers.len());
            let codes_here = if r == regs_needed - 1 {
                hist - (regs_needed - 1) * codes_per_reg
            } else {
                codes_per_reg
            };
            registers.push(RegisterArray::new(&format!("hist_s{s}_r{r}"), 32, slots));
            let old = layout.add_field(&format!("hold_s{s}_r{r}"), 32);
            let mask = if (codes_here * code_bits as usize) >= 64 {
                u64::MAX
            } else {
                (1u64 << (codes_here * code_bits as usize)) - 1
            };
            let src = match carry {
                None => Operand::Field(cur),
                Some(c) => Operand::Field(c),
            };
            let mut t = Table::new(&format!("hist_s{s}_r{r}_rmw"), vec![]);
            let mut act = Action::new("shift_insert");
            act.ops.push(AluOp::RegShiftInsert {
                dst: old,
                reg,
                index: Operand::Field(hash_field),
                a: src,
                shift: code_bits,
                mask,
            });
            // Evicted top code of this register feeds the next-older one.
            if r > 0 {
                let c = layout.add_field(&format!("carry_s{s}_r{r}"), 8);
                act.ops.push(AluOp::Shr {
                    dst: c,
                    a: Operand::Field(old),
                    amount: ((codes_here - 1) * code_bits as usize) as u8,
                });
                act.ops.push(AluOp::And {
                    dst: c,
                    a: Operand::Field(c),
                    b: Operand::Const((1i64 << code_bits) - 1),
                });
                carry = Some(c);
            }
            t.default_action = Some((t.add_action(act), vec![]));
            tables.push(t);
            old_fields.push(old);
        }
        // Unpack old values into per-slot 8-bit fields (oldest first).
        let mut unpack_t = Table::new(&format!("unpack_s{s}"), vec![]);
        let mut unpack = Action::new("unpack");
        let mut slots_fields: Vec<FieldId> = Vec::new();
        // old_fields is newest-reg-first; iterate regs oldest-first.
        for (rev_i, &old) in old_fields.iter().rev().enumerate() {
            let r = rev_i; // register index 0 = oldest
            let codes_here = if r == regs_needed - 1 {
                hist - (regs_needed - 1) * codes_per_reg
            } else {
                codes_per_reg
            };
            for j in (0..codes_here).rev() {
                // j-th code from the top = older.
                let f = layout.add_field(&format!("h_s{s}_{}", slots_fields.len()), 8);
                unpack.ops.push(AluOp::Shr {
                    dst: f,
                    a: Operand::Field(old),
                    amount: (j * code_bits as usize) as u8,
                });
                unpack.ops.push(AluOp::And {
                    dst: f,
                    a: Operand::Field(f),
                    b: Operand::Const((1i64 << code_bits) - 1),
                });
                slots_fields.push(f);
            }
        }
        unpack_t.default_action = Some((unpack_t.add_action(unpack), vec![]));
        tables.push(unpack_t);
        slots_fields.push(cur); // newest = current packet
        per_stream_unpacked.push(slots_fields);
    }
    // Interleave stream-major per packet: [p0_s0, p0_s1, p1_s0, ...].
    for p in 0..w {
        for stream_fields in per_stream_unpacked.iter() {
            window_fields.push(stream_fields[p]);
        }
    }

    // ---- 5. Packet counter + validity. -----------------------------------
    let counter = RegId(registers.len());
    registers.push(RegisterArray::new("pkt_count", 8, slots));
    let count_field = layout.add_field("count_old", 8);
    let valid_field = layout.add_field("win_valid", 1);
    {
        let mut t = Table::new("count_rmw", vec![]);
        let act = Action::new("incr").with(AluOp::RegIncrSat {
            dst: count_field,
            reg: counter,
            index: Operand::Field(hash_field),
            by: 1,
            max: 255,
        });
        t.default_action = Some((t.add_action(act), vec![]));
        tables.push(t);

        let mut v = Table::new("win_validity", vec![(count_field, MatchKind::Range)]);
        let set1 = v.add_action(
            Action::new("valid").with(AluOp::Set { dst: valid_field, a: Operand::Const(1) }),
        );
        v.add_entry(TableEntry {
            keys: vec![KeyPart::Range { lo: (w - 1) as u64, hi: 255 }],
            priority: 0,
            action_idx: set1,
            action_data: vec![],
        });
        report.entries += 1;
        report.lookups_per_input += 1;
        tables.push(v);
    }

    // ---- 6. Window model. -------------------------------------------------
    let emitted = emit_into(
        &spec.window_program,
        &spec.window_train,
        &spec.opts,
        spec.target,
        &format!("{}_win", spec.name),
        &spec.window_tree_overrides,
        &mut layout,
        &mut tables,
        &mut uniq,
        &window_fields,
    )?;
    accumulate(&mut report, &emitted.report);

    let mut program = SwitchProgram::new(&spec.name, layout);
    program.tables = tables;
    program.registers = registers;
    report.tables = program.tables.len();

    let ts_state = if spec.ts_bits > 0 && needs_ipd { spec.ts_bits as u64 } else { 0 };
    let stateful = (w as u64 - 1) * code_bits as u64 * streams as u64 + ts_state;
    program.stateful_bits_per_flow = stateful;

    program.keep_alive = emitted.score_fields.clone();
    if let Some(p) = emitted.predicted_field {
        program.keep_alive.push(p);
    }
    program.keep_alive.push(valid_field);
    let mut inputs = vec![len_field, ts_field, hash_field];
    inputs.extend(extractor_fields.iter().copied());
    let (_, remap) = program.compact_phv(&inputs);

    Ok(FlowPipeline {
        program,
        len_field: remap.get(len_field),
        ts_field: remap.get(ts_field),
        hash_field: remap.get(hash_field),
        extractor_fields: extractor_fields.iter().map(|&x| remap.get(x)).collect(),
        predicted_field: emitted.predicted_field.map(|x| remap.get(x)),
        score_fields: emitted.score_fields.iter().map(|&x| remap.get(x)).collect(),
        score_format: emitted.score_format,
        valid_field: remap.get(valid_field),
        stateful_bits_per_flow: stateful,
        report,
    })
}

fn accumulate(total: &mut CompileReport, part: &CompileReport) {
    total.fuzzy_tables += part.fuzzy_tables;
    total.exact_tables += part.exact_tables;
    total.entries += part.entries;
    total.lookups_per_input += part.lookups_per_input;
}

/// The leading-bit log-IPD quantizer: 29 ternary entries, one action per
/// exponent — computes exactly `pegasus_net::features::quantize_ipd`.
fn emit_ipd_quantizer(
    tables: &mut Vec<Table>,
    report: &mut CompileReport,
    ipd_raw: FieldId,
    ipd_code: FieldId,
) {
    let mut t = Table::new("ipd_quant", vec![(ipd_raw, MatchKind::Ternary)]);
    // Default: ipd < 8 -> code = ipd.
    let small = t.add_action(
        Action::new("small").with(AluOp::Set { dst: ipd_code, a: Operand::Field(ipd_raw) }),
    );
    t.default_action = Some((small, vec![]));
    for e in 3u8..32 {
        let mut act = Action::new(&format!("exp{e}"));
        // mant = (ipd >> (e-3)) & 7 ; code = min(255, 8e + mant)
        act.ops.push(AluOp::Shr { dst: ipd_code, a: Operand::Field(ipd_raw), amount: e - 3 });
        act.ops.push(AluOp::And {
            dst: ipd_code,
            a: Operand::Field(ipd_code),
            b: Operand::Const(7),
        });
        act.ops.push(AluOp::Add {
            dst: ipd_code,
            a: Operand::Field(ipd_code),
            b: Operand::Const(8 * e as i64),
        });
        if 8 * e as i64 + 7 > 255 {
            act.ops.push(AluOp::Min {
                dst: ipd_code,
                a: Operand::Field(ipd_code),
                b: Operand::Const(255),
            });
        }
        let ai = t.add_action(act);
        // Matches values whose most significant set bit is exactly e.
        let value = 1u64 << e;
        let mask = (u32::MAX as u64) & !((1u64 << e) - 1);
        t.add_entry(TableEntry {
            keys: vec![KeyPart::Ternary(TernaryKey { value, mask })],
            priority: 0,
            action_idx: ai,
            action_data: vec![],
        });
        report.entries += 1;
    }
    report.lookups_per_input += 1;
    tables.push(t);
}

/// Range table reducing an emitted program's score vector to a fuzzy index.
fn emit_index_table(
    tables: &mut Vec<Table>,
    report: &mut CompileReport,
    tree: &ClusterTree,
    scores: &EmittedProgram,
    idx_field: FieldId,
    name: &str,
) {
    let fmt = scores.score_format;
    // Stored-space thresholds snapped to power-of-two boundaries: index
    // trees over the full feature vector constrain many dimensions per
    // leaf, and unsnapped boxes cross-multiply into TCAM the pipeline
    // cannot hold. A rerouted borderline packet lands in a neighboring
    // feature cluster — the same graceful degradation fuzzy matching
    // already accepts.
    let stored_tree = tree.map_thresholds(|_, t| {
        let stored = ((t / fmt.step).round() as i64 + fmt.bias).clamp(0, fmt.max_stored());
        crate::compile::snap_threshold(stored, fmt.bits, 4) as f32
    });
    let domain: Vec<(u64, u64)> = vec![(0, fmt.max_stored() as u64); scores.score_fields.len()];
    let boxes = stored_tree.leaf_boxes(&domain);
    let mut t =
        Table::new(name, scores.score_fields.iter().map(|&f| (f, MatchKind::Range)).collect());
    let set_idx = t.add_action(
        Action::new("set_idx").with(AluOp::Set { dst: idx_field, a: Operand::Param(0) }),
    );
    t.param_widths = vec![tree.index_bits()];
    for b in &boxes {
        t.add_entry(TableEntry {
            keys: b.ranges.iter().map(|&(lo, hi)| KeyPart::Range { lo, hi }).collect(),
            priority: 0,
            action_idx: set_idx,
            action_data: vec![b.index as i64],
        });
    }
    t.default_action = Some((set_idx, vec![0]));
    report.entries += boxes.len() as u64;
    report.fuzzy_tables += 1;
    report.lookups_per_input += 1;
    tables.push(t);
}

/// A deployed flow pipeline processing packets one at a time.
pub struct FlowClassifier {
    pipeline: FlowPipeline,
    loaded: LoadedProgram,
    hash_mask: u32,
}

/// One packet's classification outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowVerdict {
    /// Predicted class (Classify target) once the window is full.
    pub predicted: Option<usize>,
    /// Decoded scores (always present).
    pub scores: Vec<f32>,
    /// Whether the flow's window was full for this packet.
    pub window_full: bool,
}

impl FlowClassifier {
    /// Deploys a flow pipeline on a switch configuration. The static
    /// verifier runs first: an artifact with `Error`-severity diagnostics
    /// is rejected with [`PegasusError::Verify`] before the resource model
    /// ever sees it. Resource fit stays with the switch model's own typed
    /// [`DeployError`](pegasus_switch::DeployError).
    pub fn deploy(pipeline: FlowPipeline, cfg: &SwitchConfig) -> Result<Self, PegasusError> {
        let report = crate::verify::verify_flow(&pipeline, None);
        if report.has_errors() {
            return Err(PegasusError::Verify { report: Box::new(report) });
        }
        let loaded = pipeline.program.clone().deploy(cfg)?;
        let hash_bits = pipeline.program.layout.def(pipeline.hash_field).bits;
        Ok(FlowClassifier { pipeline, loaded, hash_mask: ((1u64 << hash_bits) - 1) as u32 })
    }

    /// The underlying pipeline description.
    pub fn pipeline(&self) -> &FlowPipeline {
        &self.pipeline
    }

    /// Switch resource utilization.
    pub fn resource_report(&self) -> ResourceReport {
        self.loaded.resource_report()
    }

    /// Per-flow register slots (the hash table size, `2^flow_slots_log2`).
    /// Flows whose truncated hashes collide share one slot — and share
    /// their register state with it.
    pub fn flow_slots(&self) -> usize {
        self.hash_mask as usize + 1
    }

    /// SRAM bits every register slot consumes (the sum of the element
    /// widths of all per-flow register arrays: code history, timestamp,
    /// warm-up counter). `flow_slots × state_bits_per_slot` is this
    /// classifier's total stateful SRAM.
    pub fn state_bits_per_slot(&self) -> u64 {
        self.loaded.with_registers(|r| r.iter().map(|a| u64::from(a.width_bits)).sum())
    }

    /// Total stateful register SRAM of this classifier, in bits — what
    /// per-tenant state budgets are checked against.
    pub fn register_state_bits(&self) -> u64 {
        self.loaded.with_registers(|r| r.total_bits())
    }

    /// The switch configuration this classifier was deployed against
    /// (its SRAM model bounds per-tenant state budgets).
    pub fn switch_config(&self) -> &SwitchConfig {
        self.loaded.config()
    }

    /// Clears all per-flow state (fresh trace).
    pub fn reset(&mut self) {
        self.loaded.reset_state();
    }

    /// A fresh-state replica of this classifier: same tables, empty
    /// registers.
    ///
    /// The sharded streaming engine forks one replica per shard. Flows are
    /// partitioned across shards by five-tuple hash, so each flow's
    /// register state lives in exactly one replica and every replica can
    /// serve through the lock-free [`on_packet_mut`](FlowClassifier::on_packet_mut)
    /// path.
    pub fn fork(&self) -> FlowClassifier {
        let mut loaded = self.loaded.clone();
        loaded.reset_state();
        FlowClassifier { pipeline: self.pipeline.clone(), loaded, hash_mask: self.hash_mask }
    }

    /// True when `other`'s per-flow register files have the same shape as
    /// this classifier's — same array count and, array by array, the same
    /// element width and slot count. Two compilations of the *same
    /// pipeline shape* (same window, code width, hash size and feature
    /// family — e.g. a retrained model) are state-compatible; a different
    /// shape is not, and its flows must re-warm after a swap.
    pub fn state_compatible(&self, other: &FlowClassifier) -> bool {
        let shape = |fc: &FlowClassifier| {
            fc.loaded
                .with_registers(|r| r.iter().map(|a| (a.width_bits, a.size)).collect::<Vec<_>>())
        };
        self.hash_mask == other.hash_mask
            && self.pipeline.extractor_fields.len() == other.pipeline.extractor_fields.len()
            && shape(self) == shape(other)
    }

    /// Transplants `prev`'s per-flow register state (code windows,
    /// timestamps, warm-up counters) into this classifier — the hot-swap
    /// path: a control plane retargets the running pipeline to a retrained
    /// model by rewriting its table entries while the per-flow registers
    /// keep their contents, so established flows classify under the new
    /// model without re-warming. Returns `false` (leaving this
    /// classifier's state untouched) when the layouts are not
    /// [`state_compatible`](FlowClassifier::state_compatible).
    pub fn adopt_state(&mut self, prev: &FlowClassifier) -> bool {
        if !self.state_compatible(prev) {
            return false;
        }
        *self.loaded.registers_mut() = prev.loaded.with_registers(|r| r.clone());
        true
    }

    /// Detaches this classifier's register file, leaving zeroed registers
    /// of the same shape behind. The incremental hot-swap transplant calls
    /// this on the *outgoing* classifier: the detached file is kept beside
    /// the fresh fork and drained slot by slot via
    /// [`adopt_slot`](FlowClassifier::adopt_slot) as flows are touched
    /// under the new epoch.
    pub fn take_registers(&mut self) -> RegFile {
        std::mem::take(self.loaded.registers_mut())
    }

    /// Copies one flow slot's state (every register array's element at
    /// `slot`) from a previously [taken](FlowClassifier::take_registers)
    /// register file into this classifier — the adopt-on-first-touch unit
    /// of work. `old` must come from a
    /// [`state_compatible`](FlowClassifier::state_compatible) classifier;
    /// with matching shapes the per-array width truncation in
    /// `RegFile::write` is the identity, so the copy is bit-exact.
    pub fn adopt_slot(&mut self, old: &RegFile, slot: usize) {
        let regs = self.loaded.registers_mut();
        for i in 0..old.len() {
            regs.write(RegId(i), slot, old.read(RegId(i), slot));
        }
    }

    /// The per-flow register slot a flow hash indexes — shared by every
    /// register array (all are sized `flow_slots`), so one slot index
    /// addresses the same flow's state across the whole file.
    pub fn flow_slot(&self, flow_hash: u32) -> usize {
        (flow_hash & self.hash_mask) as usize
    }

    /// Processes one packet of a flow.
    ///
    /// `extractor_codes` must match the spec's extractor input arity (empty
    /// for `LenIpd` pipelines). Timestamps are absolute microseconds.
    ///
    /// Takes `&self`: the per-flow registers live behind the loaded
    /// program's per-packet lock, so concurrent callers keep each packet's
    /// read-modify-writes atomic.
    pub fn on_packet(
        &self,
        flow_hash: u32,
        ts_micros: u64,
        wire_len: u16,
        extractor_codes: &[f32],
    ) -> Result<FlowVerdict, PegasusError> {
        let inputs = self.inputs_for(flow_hash, ts_micros, wire_len, extractor_codes)?;
        Ok(self.decode(&self.loaded.process(&inputs)))
    }

    /// Lock-free variant of [`on_packet`](FlowClassifier::on_packet) for an
    /// exclusively owned classifier (e.g. a per-shard
    /// [`fork`](FlowClassifier::fork)): `&mut self` proves single ownership,
    /// so the per-flow registers are updated without taking the per-packet
    /// lock. Semantics are identical.
    pub fn on_packet_mut(
        &mut self,
        flow_hash: u32,
        ts_micros: u64,
        wire_len: u16,
        extractor_codes: &[f32],
    ) -> Result<FlowVerdict, PegasusError> {
        let inputs = self.inputs_for(flow_hash, ts_micros, wire_len, extractor_codes)?;
        let phv = self.loaded.process_mut(&inputs);
        Ok(self.decode(&phv))
    }

    fn inputs_for(
        &self,
        flow_hash: u32,
        ts_micros: u64,
        wire_len: u16,
        extractor_codes: &[f32],
    ) -> Result<Vec<(FieldId, i64)>, PegasusError> {
        if extractor_codes.len() != self.pipeline.extractor_fields.len() {
            return Err(PegasusError::FeatureCount {
                expected: self.pipeline.extractor_fields.len(),
                got: extractor_codes.len(),
            });
        }
        let mut inputs: Vec<(FieldId, i64)> = vec![
            (self.pipeline.len_field, wire_len as i64),
            (self.pipeline.ts_field, (ts_micros >> 6) as i64), // 64 µs units
            (self.pipeline.hash_field, (flow_hash & self.hash_mask) as i64),
        ];
        for (&f, &c) in self.pipeline.extractor_fields.iter().zip(extractor_codes.iter()) {
            inputs.push((f, c.round().clamp(0.0, 255.0) as i64));
        }
        Ok(inputs)
    }

    fn decode(&self, phv: &pegasus_switch::Phv) -> FlowVerdict {
        let window_full = phv.get(self.pipeline.valid_field) == 1;
        let scores: Vec<f32> = self
            .pipeline
            .score_fields
            .iter()
            .map(|&f| self.pipeline.score_format.to_real(phv.get(f)))
            .collect();
        let predicted = match self.pipeline.predicted_field {
            Some(f) if window_full => Some(phv.get(f) as usize),
            _ => None,
        };
        FlowVerdict { predicted, scores, window_full }
    }
}

// --- serde (control-daemon artifact format) ----------------------------

serde::impl_serde_struct!(FlowPipeline {
    program,
    len_field,
    ts_field,
    hash_field,
    extractor_fields,
    predicted_field,
    score_fields,
    score_format,
    valid_field,
    stateful_bits_per_flow,
    report,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::fuse_basic;
    use crate::primitives::MapFn;
    use pegasus_nn::Tensor;
    use rand::Rng;
    use rand::SeedableRng;

    /// Window model: class 0 iff sum of codes is small. W=4, LenIpd (8 codes).
    fn window_program() -> PrimitiveProgram {
        let mut p = PrimitiveProgram::new(8);
        let segs = p.partition_strided(p.input, 2, 2);
        let mapped: Vec<_> = segs
            .iter()
            .map(|&s| {
                // score0 = 200 - (len+ipd)/2, score1 = (len+ipd)/2
                let w = Tensor::from_vec(vec![-0.5, 0.5, -0.5, 0.5], &[2, 2]);
                p.map(s, MapFn::MatVec { weight: w, bias: vec![50.0, 0.0] })
            })
            .collect();
        let out = p.sum_reduce(&mapped);
        p.set_output(out);
        p
    }

    fn window_train(n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..8).map(|_| rng.gen_range(0..200) as f32).collect()).collect()
    }

    fn spec() -> FlowPipelineSpec {
        let mut wp = window_program();
        fuse_basic(&mut wp);
        FlowPipelineSpec {
            name: "flowtest".to_string(),
            window: 4,
            codes: PacketCodes::LenIpd,
            window_program: wp,
            window_train: window_train(1500, 1),
            window_tree_overrides: HashMap::new(),
            opts: CompileOptions { clustering_depth: 5, ..Default::default() },
            target: CompileTarget::Classify,
            flow_slots_log2: 10,
            ts_bits: 16,
        }
    }

    #[test]
    fn pipeline_builds_and_deploys() {
        let p = build_flow_pipeline(&spec()).expect("builds");
        assert!(p.stateful_bits_per_flow > 0);
        // (W-1) * 8 bits * 2 streams + 16 ts = 3*16+16 = 64.
        assert_eq!(p.stateful_bits_per_flow, 64);
        let c = FlowClassifier::deploy(p, &SwitchConfig::tofino2()).expect("deploys");
        let r = c.resource_report();
        assert!(r.stages_used <= 20, "stages {}", r.stages_used);
    }

    #[test]
    fn window_warms_up_then_classifies() {
        let p = build_flow_pipeline(&spec()).expect("builds");
        let c = FlowClassifier::deploy(p, &SwitchConfig::tofino2()).unwrap();
        // First W-1 packets: not valid. From packet W on: valid.
        for i in 0..3 {
            let v = c.on_packet(7, i * 100_000, 100, &[]).expect("packet");
            assert!(!v.window_full, "packet {i} should not complete a window");
            assert_eq!(v.predicted, None);
        }
        let v = c.on_packet(7, 300_000, 100, &[]).expect("packet");
        assert!(v.window_full);
        assert!(v.predicted.is_some());
    }

    #[test]
    fn classification_tracks_packet_sizes() {
        let p = build_flow_pipeline(&spec()).expect("builds");
        let c = FlowClassifier::deploy(p, &SwitchConfig::tofino2()).unwrap();
        // Small packets & tiny IPDs -> small codes -> class 0.
        let mut last = FlowVerdict { predicted: None, scores: vec![], window_full: false };
        for i in 0..6 {
            last = c.on_packet(1, i * 1000, 64, &[]).expect("packet");
        }
        assert_eq!(last.predicted, Some(0), "{last:?}");
        // Large packets & long IPDs -> large codes -> class 1.
        for i in 0..6 {
            last = c.on_packet(2, i * 60_000_000, 1500, &[]).expect("packet");
        }
        assert_eq!(last.predicted, Some(1), "{last:?}");
    }

    #[test]
    fn flows_do_not_interfere() {
        let p = build_flow_pipeline(&spec()).expect("builds");
        let c = FlowClassifier::deploy(p, &SwitchConfig::tofino2()).unwrap();
        // Interleave two flows; each still needs W packets of its own.
        for i in 0..3 {
            c.on_packet(100, i * 1000, 100, &[]).expect("packet");
            c.on_packet(200, i * 1000 + 7, 1500, &[]).expect("packet");
        }
        let va = c.on_packet(100, 3000, 100, &[]).expect("packet");
        let vb = c.on_packet(200, 3007, 1500, &[]).expect("packet");
        assert!(va.window_full && vb.window_full);
        assert_ne!(va.predicted, vb.predicted);
    }

    #[test]
    fn fork_matches_shared_path_packet_for_packet() {
        let p = build_flow_pipeline(&spec()).expect("builds");
        let shared = FlowClassifier::deploy(p, &SwitchConfig::tofino2()).unwrap();
        let mut owned = shared.fork();
        // Interleaved flows; the lock-free owned path must agree on every
        // packet, including warm-up.
        for i in 0..20u64 {
            let (hash, len) = (7 + (i % 3) as u32, 100 + (i * 37 % 1400) as u16);
            let a = shared.on_packet(hash, i * 50_000, len, &[]).expect("packet");
            let b = owned.on_packet_mut(hash, i * 50_000, len, &[]).expect("packet");
            assert_eq!(a, b, "packet {i}");
        }
    }

    #[test]
    fn fork_starts_with_fresh_state() {
        let p = build_flow_pipeline(&spec()).expect("builds");
        let c = FlowClassifier::deploy(p, &SwitchConfig::tofino2()).unwrap();
        for i in 0..6 {
            c.on_packet(9, i * 1000, 100, &[]).expect("packet");
        }
        let mut f = c.fork();
        let v = f.on_packet_mut(9, 99_000, 100, &[]).expect("packet");
        assert!(!v.window_full, "fork must not inherit flow state");
    }

    #[test]
    fn adopt_state_carries_windows_into_a_swapped_classifier() {
        let old =
            FlowClassifier::deploy(build_flow_pipeline(&spec()).unwrap(), &SwitchConfig::tofino2())
                .unwrap();
        let mut old = old.fork();
        // Warm a flow to one packet short of a full window.
        for i in 0..3 {
            let v = old.on_packet_mut(11, i * 1000, 100, &[]).expect("packet");
            assert!(!v.window_full);
        }
        // "Retrained" artifact of the same shape: a second deploy.
        let mut new =
            FlowClassifier::deploy(build_flow_pipeline(&spec()).unwrap(), &SwitchConfig::tofino2())
                .unwrap()
                .fork();
        assert!(new.state_compatible(&old));
        assert!(new.adopt_state(&old));
        // The adopted flow completes its window on the very next packet.
        let v = new.on_packet_mut(11, 3000, 100, &[]).expect("packet");
        assert!(v.window_full, "adopted state must carry the warm-up counter");
        // An incompatible shape (different hash size) refuses the transplant.
        let mut small = spec();
        small.flow_slots_log2 = 8;
        let mut other =
            FlowClassifier::deploy(build_flow_pipeline(&small).unwrap(), &SwitchConfig::tofino2())
                .unwrap()
                .fork();
        assert!(!other.state_compatible(&old));
        assert!(!other.adopt_state(&old));
    }

    #[test]
    fn reset_clears_windows() {
        let p = build_flow_pipeline(&spec()).expect("builds");
        let mut c = FlowClassifier::deploy(p, &SwitchConfig::tofino2()).unwrap();
        for i in 0..5 {
            c.on_packet(3, i * 1000, 100, &[]).expect("packet");
        }
        c.reset();
        let v = c.on_packet(3, 99_000, 100, &[]).expect("packet");
        assert!(!v.window_full, "reset must clear the warm-up counter");
    }

    #[test]
    fn extractor_pipeline_builds() {
        // Tiny extractor: 4 byte codes -> 2 scores; index tree over scores.
        let mut ext = PrimitiveProgram::new(4);
        let w = Tensor::from_vec(vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0], &[4, 2]);
        let input = ext.input;
        let m = ext.map(input, MapFn::MatVec { weight: w, bias: vec![0.0, 0.0] });
        ext.set_output(m);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let ext_train: Vec<Vec<f32>> =
            (0..800).map(|_| (0..4).map(|_| rng.gen_range(0..256) as f32).collect()).collect();
        let score_samples: Vec<Vec<f32>> = ext_train.iter().map(|x| ext.eval(x)).collect();
        let tree = ClusterTree::fit(&score_samples, 4);

        // Window model over 4 packets x 1 stream of 4-bit codes.
        let mut wp = PrimitiveProgram::new(4);
        let segs = wp.partition_strided(wp.input, 1, 1);
        let mapped: Vec<_> = segs
            .iter()
            .map(|&s| wp.map(s, MapFn::Affine { scale: vec![1.0], shift: vec![0.0] }))
            .collect();
        let out = wp.sum_reduce(&mapped);
        wp.set_output(out);
        let win_train: Vec<Vec<f32>> =
            (0..500).map(|_| (0..4).map(|_| rng.gen_range(0..16) as f32).collect()).collect();

        let spec = FlowPipelineSpec {
            name: "ext_test".to_string(),
            window: 4,
            codes: PacketCodes::Extractor {
                program: ext,
                train: ext_train,
                tree,
                code_bits: 4,
                ipd_input: false,
            },
            window_program: wp,
            window_train: win_train,
            window_tree_overrides: HashMap::new(),
            opts: CompileOptions::default(),
            target: CompileTarget::Scores,
            flow_slots_log2: 8,
            ts_bits: 0,
        };
        let p = build_flow_pipeline(&spec).expect("builds");
        // 3 history codes x 4 bits, no timestamp.
        assert_eq!(p.stateful_bits_per_flow, 12);
        assert_eq!(p.extractor_fields.len(), 4);
        let c = FlowClassifier::deploy(p, &SwitchConfig::tofino2()).unwrap();
        let mut v = FlowVerdict { predicted: None, scores: vec![], window_full: false };
        for i in 0..5 {
            v = c.on_packet(1, i * 1000, 100, &[10.0, 20.0, 30.0, 40.0]).expect("packet");
        }
        assert!(v.window_full);
        assert_eq!(v.scores.len(), 1);
    }
}

//! Ternary keys and range-to-ternary encoding.
//!
//! TCAM matches `(value, mask)` pairs: a packet field `x` matches when
//! `x & mask == value & mask`. Numeric range predicates — which is what the
//! fuzzy-matching clustering tree produces — must be compiled to sets of
//! ternary rules. The paper uses the Consecutive Range Coding (CRC)
//! algorithm from NetBeacon \[58\] for this (§6.1); the classic form
//! implemented here decomposes `[lo, hi]` into maximal aligned power-of-two
//! blocks, which is optimal for prefix-style expansions.

use serde::{Deserialize, Serialize};

/// A single ternary match: `x` matches when `x & mask == value`.
///
/// Invariant: `value & !mask == 0` (don't-care bits are zeroed in `value`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TernaryKey {
    /// Care-bit pattern.
    pub value: u64,
    /// Set bits participate in the comparison.
    pub mask: u64,
}

impl TernaryKey {
    /// An exact-match key over `bits` bits.
    pub fn exact(value: u64, bits: u8) -> Self {
        let mask = mask_of(bits);
        TernaryKey { value: value & mask, mask }
    }

    /// A wildcard key (matches anything).
    pub fn any() -> Self {
        TernaryKey { value: 0, mask: 0 }
    }

    /// True when `x` matches this key.
    #[inline]
    pub fn matches(&self, x: u64) -> bool {
        x & self.mask == self.value
    }

    /// Number of wildcard (don't-care) bits within a `bits`-wide field.
    pub fn wildcard_bits(&self, bits: u8) -> u32 {
        (!self.mask & mask_of(bits)).count_ones()
    }
}

/// All-ones mask of the low `bits` bits.
pub fn mask_of(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Consecutive Range Coding: encodes the inclusive integer range `[lo, hi]`
/// over a `bits`-wide field as a minimal set of prefix-style ternary keys.
///
/// The decomposition walks the range greedily from `lo`, at each step taking
/// the largest aligned power-of-two block that still fits — the standard
/// optimal prefix cover, worst case `2*bits - 2` keys.
pub fn range_to_ternary(lo: u64, hi: u64, bits: u8) -> Vec<TernaryKey> {
    assert!(lo <= hi, "empty range [{lo}, {hi}]");
    assert!(bits <= 48, "range coding supports fields up to 48 bits");
    let field_mask = mask_of(bits);
    assert!(hi <= field_mask, "range end {hi} exceeds {bits}-bit field");

    let mut keys = Vec::new();
    let mut cur = lo;
    loop {
        // Largest block size aligned at `cur`:
        let align_block =
            if cur == 0 { 1u64 << bits.min(63) } else { 1u64 << cur.trailing_zeros() };
        // Largest block that does not overshoot hi:
        let remaining = hi - cur + 1;
        let mut block = align_block.min(prev_power_of_two(remaining));
        // Guard for the bits==64 edge (align_block could be 1<<63 twice).
        if block == 0 {
            block = 1;
        }
        let prefix_bits = block.trailing_zeros() as u8;
        keys.push(TernaryKey { value: cur & field_mask, mask: field_mask & !mask_of(prefix_bits) });
        let next = cur.checked_add(block);
        match next {
            Some(n) if n <= hi => cur = n,
            _ => break,
        }
    }
    keys
}

fn prev_power_of_two(x: u64) -> u64 {
    assert!(x > 0);
    1u64 << (63 - x.leading_zeros())
}

/// Counts how many `bits`-wide values match any key in `keys`
/// (test helper for exhaustive verification of small fields).
pub fn count_matching(keys: &[TernaryKey], bits: u8) -> u64 {
    assert!(bits <= 20, "exhaustive count only for small fields");
    (0..=mask_of(bits)).filter(|&x| keys.iter().any(|k| k.matches(x))).count() as u64
}

// --- serde (control-daemon artifact format) ----------------------------

serde::impl_serde_struct!(TernaryKey { value, mask });

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_exact_cover(lo: u64, hi: u64, bits: u8) {
        let keys = range_to_ternary(lo, hi, bits);
        for x in 0..=mask_of(bits) {
            let should = (lo..=hi).contains(&x);
            let does = keys.iter().any(|k| k.matches(x));
            assert_eq!(should, does, "x={x} lo={lo} hi={hi} keys={keys:?}");
        }
    }

    #[test]
    fn single_value_is_exact() {
        let keys = range_to_ternary(5, 5, 8);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0], TernaryKey::exact(5, 8));
    }

    #[test]
    fn full_range_is_wildcard() {
        let keys = range_to_ternary(0, 255, 8);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].mask, 0);
    }

    #[test]
    fn paper_style_threshold_ranges() {
        // Fuzzy tree thresholds produce [0, t] and [t+1, max] ranges.
        assert_exact_cover(0, 5, 4);
        assert_exact_cover(6, 15, 4);
        assert_exact_cover(0, 127, 8);
        assert_exact_cover(128, 255, 8);
    }

    #[test]
    fn awkward_ranges() {
        assert_exact_cover(1, 254, 8);
        assert_exact_cover(3, 3, 8);
        assert_exact_cover(100, 101, 8);
        assert_exact_cover(0, 0, 8);
        assert_exact_cover(255, 255, 8);
    }

    #[test]
    fn rule_count_is_bounded() {
        // Classic worst case [1, 2^n - 2] needs at most 2n-2 rules.
        for bits in [4u8, 8, 12] {
            let keys = range_to_ternary(1, mask_of(bits) - 1, bits);
            assert!(keys.len() <= 2 * bits as usize - 2, "bits={bits}: {} rules", keys.len());
        }
    }

    #[test]
    fn wildcard_bit_counts() {
        let k = TernaryKey { value: 0b1000, mask: 0b1100 };
        assert_eq!(k.wildcard_bits(4), 2);
        assert_eq!(TernaryKey::any().wildcard_bits(8), 8);
        assert_eq!(TernaryKey::exact(7, 8).wildcard_bits(8), 0);
    }

    /// CRC covers exactly [lo, hi]: no value outside matches, every value
    /// inside matches (the DESIGN.md §6 property). Every `lo` is swept
    /// against a spread of widths — exhaustive where it matters (threshold
    /// ranges are the common case) without the full 2^16 product.
    #[test]
    fn range_cover_exact_sweep() {
        for lo in 0u64..256 {
            for width in [0u64, 1, 2, 3, 5, 9, 17, 33, 64, 100, 129, 200, 254, 255] {
                let hi = (lo + width).min(255);
                assert_exact_cover(lo, hi, 8);
            }
        }
    }

    /// Keys within one range decomposition never overlap (disjoint covers
    /// make the matched-value counts add up exactly).
    #[test]
    fn keys_disjoint_randomized() {
        // Simple LCG keeps this test free of external randomness sources.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..256 {
            let lo = next() % 4096;
            let hi = (lo + next() % 4096).min(4095);
            let keys = range_to_ternary(lo, hi, 12);
            let total: u64 = count_matching(&keys, 12);
            assert_eq!(total, hi - lo + 1, "lo={lo} hi={hi}");
        }
    }
}

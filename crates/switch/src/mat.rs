//! Match-action tables.
//!
//! A table matches a tuple of PHV fields against its entries (exact, ternary
//! or range match per field) and executes the matched entry's action with
//! the entry's action data. Exact tables live in SRAM; ternary and range
//! tables consume TCAM (ranges are costed via their Consecutive Range Coding
//! expansion, §6.1) with their action data in SRAM.

use crate::action::Action;
use crate::phv::{FieldId, Phv, PhvLayout};
use crate::ternary::{mask_of, range_to_ternary, TernaryKey};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How one key field is matched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchKind {
    /// Exact equality (SRAM).
    Exact,
    /// Value/mask match (TCAM).
    Ternary,
    /// Inclusive numeric range (TCAM via CRC expansion).
    Range,
}

/// One field's pattern within an entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum KeyPart {
    /// Matches when the field equals the value exactly.
    Exact(u64),
    /// Matches when `field & mask == value`.
    Ternary(TernaryKey),
    /// Matches when `lo <= field <= hi`.
    Range {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
}

impl KeyPart {
    /// True when the raw (unsigned) field value matches.
    pub fn matches(&self, raw: u64) -> bool {
        match self {
            KeyPart::Exact(v) => raw == *v,
            KeyPart::Ternary(t) => t.matches(raw),
            KeyPart::Range { lo, hi } => (*lo..=*hi).contains(&raw),
        }
    }

    /// Number of TCAM rules this part expands to on a `bits`-wide field.
    pub fn tcam_expansion(&self, bits: u8) -> u64 {
        match self {
            KeyPart::Exact(_) => 1,
            KeyPart::Ternary(_) => 1,
            KeyPart::Range { lo, hi } => range_to_ternary(*lo, *hi, bits).len() as u64,
        }
    }
}

/// One table entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// One pattern per declared key field, in declaration order.
    pub keys: Vec<KeyPart>,
    /// Higher priority wins among multiple ternary/range matches.
    pub priority: i32,
    /// Index into the table's action list.
    pub action_idx: usize,
    /// Words delivered to the action's `Param` operands on match.
    pub action_data: Vec<i64>,
}

/// A match-action table declaration plus its entries.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    /// Diagnostic name (unique within a program).
    pub name: String,
    /// Key fields and how each is matched.
    pub keys: Vec<(FieldId, MatchKind)>,
    /// The actions entries may invoke.
    pub actions: Vec<Action>,
    /// Action + data to run when nothing matches.
    pub default_action: Option<(usize, Vec<i64>)>,
    /// Match entries.
    pub entries: Vec<TableEntry>,
    /// Bit width of each action-data word (drives bus accounting).
    pub param_widths: Vec<u8>,
    #[serde(skip)]
    exact_index: Option<HashMap<Vec<u64>, usize>>,
}

/// Resource demand of one table, computed against a PHV layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableUsage {
    /// SRAM bits (exact keys + action data storage).
    pub sram_bits: u64,
    /// TCAM bits (ternary/range keys after CRC expansion; value+mask pairs).
    pub tcam_bits: u64,
    /// Action-data bus bits consumed per lookup.
    pub bus_bits: u64,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, keys: Vec<(FieldId, MatchKind)>) -> Self {
        Table {
            name: name.to_string(),
            keys,
            actions: Vec::new(),
            default_action: None,
            entries: Vec::new(),
            param_widths: Vec::new(),
            exact_index: None,
        }
    }

    /// Registers an action, returning its index.
    pub fn add_action(&mut self, action: Action) -> usize {
        self.actions.push(action);
        self.actions.len() - 1
    }

    /// Appends an entry (validates arity).
    pub fn add_entry(&mut self, entry: TableEntry) {
        assert_eq!(entry.keys.len(), self.keys.len(), "entry key arity mismatch");
        assert!(entry.action_idx < self.actions.len(), "entry references unknown action");
        for (part, (_, kind)) in entry.keys.iter().zip(self.keys.iter()) {
            let ok = matches!(
                (part, kind),
                (KeyPart::Exact(_), MatchKind::Exact)
                    | (KeyPart::Ternary(_), MatchKind::Ternary)
                    | (KeyPart::Range { .. }, MatchKind::Range)
                    // Exact values are expressible in ternary/range columns.
                    | (KeyPart::Exact(_), MatchKind::Ternary)
                    | (KeyPart::Exact(_), MatchKind::Range)
            );
            assert!(ok, "key part {part:?} incompatible with match kind {kind:?}");
        }
        self.exact_index = None;
        self.entries.push(entry);
    }

    /// True when every key column is exact-matched (pure SRAM table).
    pub fn is_exact(&self) -> bool {
        self.keys.iter().all(|(_, k)| *k == MatchKind::Exact)
    }

    /// Builds the hash index for exact tables (idempotent).
    pub fn build_index(&mut self) {
        if !self.is_exact() || self.exact_index.is_some() {
            return;
        }
        let mut idx = HashMap::with_capacity(self.entries.len());
        for (i, e) in self.entries.iter().enumerate() {
            let key: Vec<u64> = e
                .keys
                .iter()
                .map(|p| match p {
                    KeyPart::Exact(v) => *v,
                    _ => unreachable!("exact table with non-exact part"),
                })
                .collect();
            idx.entry(key).or_insert(i);
        }
        self.exact_index = Some(idx);
    }

    /// Raw unsigned value of a PHV field (what the match hardware sees).
    fn raw(phv: &Phv, field: FieldId) -> u64 {
        let bits = phv.layout().def(field).bits;
        (phv.get(field) as u64) & mask_of(bits)
    }

    /// Looks up the PHV, returning `(action, action_data)` of the winning
    /// entry, or the default action.
    pub fn lookup(&self, phv: &Phv) -> Option<(&Action, &[i64])> {
        let raws: Vec<u64> = self.keys.iter().map(|(f, _)| Self::raw(phv, *f)).collect();
        let hit = if let Some(index) = &self.exact_index {
            index.get(&raws).copied()
        } else {
            self.entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.keys.iter().zip(raws.iter()).all(|(p, &r)| p.matches(r)))
                .max_by_key(|(i, e)| (e.priority, -(*i as i64)))
                .map(|(i, _)| i)
        };
        match hit {
            Some(i) => {
                let e = &self.entries[i];
                Some((&self.actions[e.action_idx], &e.action_data[..]))
            }
            None => {
                self.default_action.as_ref().map(|(idx, data)| (&self.actions[*idx], &data[..]))
            }
        }
    }

    /// Computes the table's resource demand against a layout.
    pub fn usage(&self, layout: &PhvLayout) -> TableUsage {
        let key_bits: u64 = self.keys.iter().map(|(f, _)| layout.def(*f).bits as u64).sum();
        let data_bits: u64 = self.param_widths.iter().map(|&w| w as u64).sum();
        // Action-id overhead per entry (selects among up to 256 actions).
        const ACTION_ID_BITS: u64 = 8;

        if self.is_exact() {
            // Hash-table style SRAM entry: key + action id + action data.
            let sram = self.entries.len() as u64 * (key_bits + ACTION_ID_BITS + data_bits);
            TableUsage { sram_bits: sram, tcam_bits: 0, bus_bits: data_bits }
        } else {
            // TCAM rules after range expansion (cross product of per-field
            // expansions), value+mask per rule; action data stays in SRAM.
            let mut rules: u64 = 0;
            for e in &self.entries {
                let mut per_entry: u64 = 1;
                for (part, (f, _)) in e.keys.iter().zip(self.keys.iter()) {
                    per_entry = per_entry.saturating_mul(part.tcam_expansion(layout.def(*f).bits));
                }
                rules = rules.saturating_add(per_entry);
            }
            let tcam = rules.saturating_mul(2 * key_bits);
            let sram = self.entries.len() as u64 * (ACTION_ID_BITS + data_bits);
            TableUsage { sram_bits: sram, tcam_bits: tcam, bus_bits: data_bits }
        }
    }

    /// Fields read by this table (match keys plus action sources).
    pub fn reads(&self) -> Vec<FieldId> {
        let mut fields: Vec<FieldId> = self.keys.iter().map(|(f, _)| *f).collect();
        for a in &self.actions {
            for op in &a.ops {
                fields.extend(op.src_fields());
            }
        }
        fields.sort_unstable();
        fields.dedup();
        fields
    }

    /// Fields written by this table's actions.
    pub fn writes(&self) -> Vec<FieldId> {
        let mut fields: Vec<FieldId> = self
            .actions
            .iter()
            .flat_map(|a| a.ops.iter().filter_map(|op| op.dst_field()))
            .collect();
        fields.sort_unstable();
        fields.dedup();
        fields
    }
}

// --- serde (control-daemon artifact format) ----------------------------
//
// `exact_index` is a derived cache (`#[serde(skip)]` above): it is not
// encoded, and decoding leaves it `None` exactly like `Table::new` —
// `build_index` reconstructs it at deploy time.

impl serde::Serialize for MatchKind {
    fn serialize(&self, w: &mut serde::Writer) {
        w.write_u8(match self {
            MatchKind::Exact => 0,
            MatchKind::Ternary => 1,
            MatchKind::Range => 2,
        });
    }
}

impl<'de> serde::Deserialize<'de> for MatchKind {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        Ok(match r.read_u8("MatchKind")? {
            0 => MatchKind::Exact,
            1 => MatchKind::Ternary,
            2 => MatchKind::Range,
            tag => return Err(serde::DecodeError::BadTag { what: "MatchKind", tag }),
        })
    }
}

impl serde::Serialize for KeyPart {
    fn serialize(&self, w: &mut serde::Writer) {
        match self {
            KeyPart::Exact(v) => {
                w.write_u8(0);
                v.serialize(w);
            }
            KeyPart::Ternary(t) => {
                w.write_u8(1);
                t.serialize(w);
            }
            KeyPart::Range { lo, hi } => {
                w.write_u8(2);
                lo.serialize(w);
                hi.serialize(w);
            }
        }
    }
}

impl<'de> serde::Deserialize<'de> for KeyPart {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        Ok(match r.read_u8("KeyPart")? {
            0 => KeyPart::Exact(serde::Deserialize::deserialize(r)?),
            1 => KeyPart::Ternary(serde::Deserialize::deserialize(r)?),
            2 => KeyPart::Range {
                lo: serde::Deserialize::deserialize(r)?,
                hi: serde::Deserialize::deserialize(r)?,
            },
            tag => return Err(serde::DecodeError::BadTag { what: "KeyPart", tag }),
        })
    }
}

serde::impl_serde_struct!(TableEntry { keys, priority, action_idx, action_data });

impl serde::Serialize for Table {
    fn serialize(&self, w: &mut serde::Writer) {
        self.name.serialize(w);
        self.keys.serialize(w);
        self.actions.serialize(w);
        self.default_action.serialize(w);
        self.entries.serialize(w);
        self.param_widths.serialize(w);
    }
}

impl<'de> serde::Deserialize<'de> for Table {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        Ok(Table {
            name: serde::Deserialize::deserialize(r)?,
            keys: serde::Deserialize::deserialize(r)?,
            actions: serde::Deserialize::deserialize(r)?,
            default_action: serde::Deserialize::deserialize(r)?,
            entries: serde::Deserialize::deserialize(r)?,
            param_widths: serde::Deserialize::deserialize(r)?,
            exact_index: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{AluOp, Operand};
    use crate::register::RegFile;

    fn layout() -> (PhvLayout, FieldId, FieldId, FieldId) {
        let mut l = PhvLayout::new();
        let x = l.add_field("x", 8);
        let y = l.add_field("y", 8);
        let out = l.add_signed_field("out", 16);
        (l, x, y, out)
    }

    fn set_out(out: FieldId) -> Action {
        Action::new("set_out").with(AluOp::Set { dst: out, a: Operand::Param(0) })
    }

    #[test]
    fn exact_lookup_hits_and_misses() {
        let (l, x, _y, out) = layout();
        let mut t = Table::new("t", vec![(x, MatchKind::Exact)]);
        let a = t.add_action(set_out(out));
        t.param_widths = vec![16];
        t.add_entry(TableEntry {
            keys: vec![KeyPart::Exact(7)],
            priority: 0,
            action_idx: a,
            action_data: vec![111],
        });
        t.default_action = Some((a, vec![-1]));
        t.build_index();

        let mut phv = l.instantiate();
        phv.set(x, 7);
        let (act, data) = t.lookup(&phv).unwrap();
        let mut regs = RegFile::new(vec![]);
        act.execute(&mut phv, data, &mut regs);
        assert_eq!(phv.get(out), 111);

        phv.set(x, 8);
        let (act, data) = t.lookup(&phv).unwrap();
        act.execute(&mut phv, data, &mut regs);
        assert_eq!(phv.get(out), -1); // default action
    }

    #[test]
    fn range_lookup_respects_bounds() {
        let (l, x, _y, out) = layout();
        let mut t = Table::new("t", vec![(x, MatchKind::Range)]);
        let a = t.add_action(set_out(out));
        t.param_widths = vec![16];
        t.add_entry(TableEntry {
            keys: vec![KeyPart::Range { lo: 10, hi: 20 }],
            priority: 0,
            action_idx: a,
            action_data: vec![1],
        });
        let mut phv = l.instantiate();
        phv.set(x, 15);
        assert!(t.lookup(&phv).is_some());
        phv.set(x, 21);
        assert!(t.lookup(&phv).is_none());
        phv.set(x, 10);
        assert!(t.lookup(&phv).is_some());
    }

    #[test]
    fn priority_breaks_overlaps() {
        let (l, x, _y, out) = layout();
        let mut t = Table::new("t", vec![(x, MatchKind::Range)]);
        let a = t.add_action(set_out(out));
        t.param_widths = vec![16];
        t.add_entry(TableEntry {
            keys: vec![KeyPart::Range { lo: 0, hi: 255 }],
            priority: 1,
            action_idx: a,
            action_data: vec![1],
        });
        t.add_entry(TableEntry {
            keys: vec![KeyPart::Range { lo: 100, hi: 200 }],
            priority: 10,
            action_idx: a,
            action_data: vec![2],
        });
        let mut phv = l.instantiate();
        phv.set(x, 150);
        let (_, data) = t.lookup(&phv).unwrap();
        assert_eq!(data, &[2]); // higher priority
        phv.set(x, 50);
        let (_, data) = t.lookup(&phv).unwrap();
        assert_eq!(data, &[1]);
    }

    #[test]
    fn multi_field_keys_all_must_match() {
        let (l, x, y, out) = layout();
        let mut t = Table::new("t", vec![(x, MatchKind::Range), (y, MatchKind::Range)]);
        let a = t.add_action(set_out(out));
        t.param_widths = vec![16];
        t.add_entry(TableEntry {
            keys: vec![KeyPart::Range { lo: 0, hi: 10 }, KeyPart::Range { lo: 5, hi: 15 }],
            priority: 0,
            action_idx: a,
            action_data: vec![9],
        });
        let mut phv = l.instantiate();
        phv.set(x, 5);
        phv.set(y, 10);
        assert!(t.lookup(&phv).is_some());
        phv.set(y, 20);
        assert!(t.lookup(&phv).is_none());
    }

    #[test]
    fn exact_index_matches_linear_scan() {
        let (l, x, _y, out) = layout();
        let mut t = Table::new("t", vec![(x, MatchKind::Exact)]);
        let a = t.add_action(set_out(out));
        t.param_widths = vec![16];
        for v in 0..50u64 {
            t.add_entry(TableEntry {
                keys: vec![KeyPart::Exact(v)],
                priority: 0,
                action_idx: a,
                action_data: vec![v as i64 * 3],
            });
        }
        let mut indexed = t.clone();
        indexed.build_index();
        let mut phv = l.instantiate();
        for v in 0..60 {
            phv.set(x, v);
            let lin = t.lookup(&phv).map(|(_, d)| d.to_vec());
            let idx = indexed.lookup(&phv).map(|(_, d)| d.to_vec());
            assert_eq!(lin, idx, "mismatch at {v}");
        }
    }

    #[test]
    fn usage_exact_vs_range() {
        let (l, x, _y, _out) = layout();
        let mut exact = Table::new("e", vec![(x, MatchKind::Exact)]);
        let a = exact.add_action(Action::new("noop"));
        exact.param_widths = vec![16];
        exact.add_entry(TableEntry {
            keys: vec![KeyPart::Exact(1)],
            priority: 0,
            action_idx: a,
            action_data: vec![0],
        });
        let u = exact.usage(&l);
        assert_eq!(u.tcam_bits, 0);
        assert_eq!(u.sram_bits, 8 + 8 + 16);
        assert_eq!(u.bus_bits, 16);

        let mut range = Table::new("r", vec![(x, MatchKind::Range)]);
        let a = range.add_action(Action::new("noop"));
        range.param_widths = vec![16];
        range.add_entry(TableEntry {
            keys: vec![KeyPart::Range { lo: 1, hi: 254 }],
            priority: 0,
            action_idx: a,
            action_data: vec![0],
        });
        let u = range.usage(&l);
        assert!(u.tcam_bits > 0);
        // [1,254] on 8 bits expands to 14 rules x 2 x 8 bits.
        assert_eq!(u.tcam_bits, 14 * 16);
    }

    #[test]
    fn reads_and_writes_introspection() {
        let (_, x, y, out) = layout();
        let mut t = Table::new("t", vec![(x, MatchKind::Exact)]);
        t.add_action(Action::new("a").with(AluOp::Add {
            dst: out,
            a: Operand::Field(y),
            b: Operand::Const(1),
        }));
        assert_eq!(t.reads(), vec![x, y]);
        assert_eq!(t.writes(), vec![out]);
    }
}

//! # pegasus-switch — a PISA programmable-switch simulator
//!
//! This crate is the execution substrate standing in for the paper's
//! Barefoot Tofino 2 testbed. It models the match-action pipeline exactly as
//! the paper characterizes it (§2):
//!
//! * 20 match-action stages per pipeline, each with **10 Mb SRAM**,
//!   **0.5 Mb TCAM** and a **1024-bit action data bus**;
//! * a **4096-bit packet header vector** ([`phv`]);
//! * integer-only ALUs — add/sub/shift/compare/bitwise, *no* multiply,
//!   divide, float or exponential ([`action`]);
//! * exact (SRAM), ternary and range (TCAM) match tables ([`mat`]), with
//!   numeric ranges compiled to ternary rules via Consecutive Range Coding
//!   ([`ternary`], §6.1);
//! * stateful 8/16/32-bit register arrays ([`register`]) — no 4-bit
//!   registers, per the paper's footnote 2.
//!
//! [`program::SwitchProgram::deploy`] plays the role of the P4 compiler's
//! resource allocator: it assigns tables to stages honoring data
//! dependencies and rejects programs that exceed any physical limit, which
//! is what makes "fits on the switch" a falsifiable claim in this
//! reproduction. [`program::LoadedProgram::resource_report`] yields the
//! SRAM/TCAM/bus utilization percentages reported in the paper's Table 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod config;
pub mod mat;
pub mod phv;
pub mod program;
pub mod register;
pub mod ternary;

pub use action::{Action, AluOp, Operand, RegId};
pub use config::SwitchConfig;
pub use mat::{KeyPart, MatchKind, Table, TableEntry};
pub use phv::{truncate, FieldId, Phv, PhvLayout};
pub use program::{DeployError, LoadedProgram, PhvRemap, ResourceReport, SwitchProgram};
pub use register::{RegFile, RegisterArray};
pub use ternary::{mask_of, range_to_ternary, TernaryKey};

//! Switch resource models.
//!
//! The numbers here come straight from the paper's description of Barefoot
//! Tofino 2 (§2): 20 MAT stages per pipeline, 10 Mb SRAM and 0.5 Mb TCAM per
//! stage, a 1024-bit action data bus, and a 4096-bit packet header vector.
//! The simulator refuses to deploy programs that exceed them, which is what
//! makes the Table 6 resource-utilization experiment meaningful.

use serde::{Deserialize, Serialize};

/// Static resource description of a PISA pipeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// Human-readable target name.
    pub name: String,
    /// Number of match-action stages in one pipeline.
    pub stages: usize,
    /// SRAM bits available per stage.
    pub sram_bits_per_stage: u64,
    /// TCAM bits available per stage.
    pub tcam_bits_per_stage: u64,
    /// Action data bus width per stage, in bits.
    pub action_bus_bits_per_stage: u64,
    /// Packet header vector capacity in bits.
    pub phv_bits: u64,
    /// Total stateful register SRAM available to the program, in bits.
    ///
    /// On Tofino this is carved out of the same SRAM banks; we model a
    /// dedicated budget (half the total SRAM) which is what the paper's
    /// Figure 7 sweep varies against.
    pub register_bits_total: u64,
    /// Supported stateful register widths, in bits. The paper notes PISA
    /// does not support 4-bit registers (§7.3 footnote 2).
    pub register_widths: Vec<u8>,
    /// Aggregate line rate in bits per second (Tofino 2: 12.8 Tb/s).
    pub line_rate_bps: f64,
    /// Fixed per-packet pipeline latency in nanoseconds.
    pub pipeline_latency_ns: f64,
}

impl SwitchConfig {
    /// The Tofino-2-like model used throughout the evaluation.
    pub fn tofino2() -> Self {
        SwitchConfig {
            name: "tofino2-model".to_string(),
            stages: 20,
            sram_bits_per_stage: 10 * 1024 * 1024,
            tcam_bits_per_stage: 512 * 1024,
            action_bus_bits_per_stage: 1024,
            phv_bits: 4096,
            register_bits_total: 100 * 1024 * 1024,
            register_widths: vec![8, 16, 32],
            line_rate_bps: 12.8e12,
            pipeline_latency_ns: 400.0,
        }
    }

    /// A deliberately tiny profile for tests that need to trigger resource
    /// exhaustion quickly.
    pub fn tiny_test() -> Self {
        SwitchConfig {
            name: "tiny-test".to_string(),
            stages: 4,
            sram_bits_per_stage: 64 * 1024,
            tcam_bits_per_stage: 8 * 1024,
            action_bus_bits_per_stage: 256,
            phv_bits: 512,
            register_bits_total: 64 * 1024,
            register_widths: vec![8, 16, 32],
            line_rate_bps: 1.0e9,
            pipeline_latency_ns: 400.0,
        }
    }

    /// Total SRAM bits across all stages.
    pub fn total_sram_bits(&self) -> u64 {
        self.sram_bits_per_stage * self.stages as u64
    }

    /// Total TCAM bits across all stages.
    pub fn total_tcam_bits(&self) -> u64 {
        self.tcam_bits_per_stage * self.stages as u64
    }

    /// Total action-bus bits across all stages.
    pub fn total_bus_bits(&self) -> u64 {
        self.action_bus_bits_per_stage * self.stages as u64
    }

    /// Packets per second at line rate for the given average packet size.
    ///
    /// PISA guarantees that any program that *fits* runs at line rate (§7.5),
    /// so dataplane inference throughput is a function of packet size only.
    pub fn line_rate_pps(&self, avg_packet_bytes: f64) -> f64 {
        assert!(avg_packet_bytes > 0.0);
        // 20 bytes of Ethernet inter-frame gap + preamble overhead per packet.
        self.line_rate_bps / ((avg_packet_bytes + 20.0) * 8.0)
    }

    /// True when `width` is a deployable register width.
    pub fn supports_register_width(&self, width: u8) -> bool {
        self.register_widths.contains(&width)
    }

    /// Rounds a desired per-flow stateful width up to deployable registers,
    /// returning the physical bits consumed.
    ///
    /// E.g. seven 4-bit indexes must be stored in four 8-bit registers
    /// (the paper's footnote 2 scenario): `physical_register_bits(28) == 32`.
    pub fn physical_register_bits(&self, logical_bits: u64) -> u64 {
        let min_width = *self.register_widths.iter().min().expect("no register widths") as u64;
        logical_bits.div_ceil(min_width) * min_width
    }
}

// --- serde (control-daemon artifact format) ----------------------------

serde::impl_serde_struct!(SwitchConfig {
    name,
    stages,
    sram_bits_per_stage,
    tcam_bits_per_stage,
    action_bus_bits_per_stage,
    phv_bits,
    register_bits_total,
    register_widths,
    line_rate_bps,
    pipeline_latency_ns,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tofino2_matches_paper_numbers() {
        let c = SwitchConfig::tofino2();
        assert_eq!(c.stages, 20);
        assert_eq!(c.sram_bits_per_stage, 10 * 1024 * 1024);
        assert_eq!(c.tcam_bits_per_stage, 512 * 1024);
        assert_eq!(c.action_bus_bits_per_stage, 1024);
        assert_eq!(c.phv_bits, 4096);
    }

    #[test]
    fn no_4bit_registers() {
        let c = SwitchConfig::tofino2();
        assert!(!c.supports_register_width(4));
        assert!(c.supports_register_width(8));
    }

    #[test]
    fn physical_register_rounding_matches_footnote() {
        let c = SwitchConfig::tofino2();
        // 7 x 4-bit fuzzy indexes = 28 logical bits -> 4 x 8-bit registers.
        assert_eq!(c.physical_register_bits(28), 32);
        assert_eq!(c.physical_register_bits(32), 32);
        assert_eq!(c.physical_register_bits(33), 40);
    }

    #[test]
    fn line_rate_pps_scales_inversely() {
        let c = SwitchConfig::tofino2();
        let small = c.line_rate_pps(64.0);
        let big = c.line_rate_pps(1500.0);
        assert!(small > big * 10.0);
        // 12.8 Tb/s at 64B+20B overhead = ~19 Gpps.
        assert!((small - 12.8e12 / (84.0 * 8.0)).abs() < 1.0);
    }

    #[test]
    fn totals_multiply_by_stages() {
        let c = SwitchConfig::tiny_test();
        assert_eq!(c.total_sram_bits(), 4 * 64 * 1024);
        assert_eq!(c.total_bus_bits(), 4 * 256);
    }
}

//! Actions: the ALU micro-programs executed when a table entry matches.
//!
//! PISA ALUs support only the operations the paper relies on (§2, §6):
//! assignment, integer add/sub, shifts, min/max and stateful register
//! access. There is deliberately **no multiply, divide, or float op** here —
//! if the Pegasus compiler ever emitted one, the simulator could not express
//! it, which is precisely the constraint the paper designs around.

use crate::phv::{FieldId, Phv};
use crate::register::RegFile;
use serde::{Deserialize, Serialize};

/// Identifier of a register array within a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegId(pub usize);

/// An ALU operand: a PHV field, an immediate constant, or a slot of the
/// matched entry's action data.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Read a PHV field.
    Field(FieldId),
    /// Immediate constant baked into the action.
    Const(i64),
    /// The `i`-th action-data word attached to the matched entry.
    ///
    /// Action data is fetched over the action data bus, so the number and
    /// width of distinct `Param` slots drives bus utilization (Table 6).
    Param(usize),
}

/// One ALU operation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // operand fields follow one dst/a/b convention
pub enum AluOp {
    /// `dst = a`
    Set { dst: FieldId, a: Operand },
    /// `dst = a + b` (truncating)
    Add { dst: FieldId, a: Operand, b: Operand },
    /// `dst = a - b` (truncating)
    Sub { dst: FieldId, a: Operand, b: Operand },
    /// `dst = a << amount`
    Shl { dst: FieldId, a: Operand, amount: u8 },
    /// `dst = a >> amount` (arithmetic for signed fields)
    Shr { dst: FieldId, a: Operand, amount: u8 },
    /// `dst = min(a, b)`
    Min { dst: FieldId, a: Operand, b: Operand },
    /// `dst = max(a, b)`
    Max { dst: FieldId, a: Operand, b: Operand },
    /// `dst = a & b`
    And { dst: FieldId, a: Operand, b: Operand },
    /// `dst = a | b`
    Or { dst: FieldId, a: Operand, b: Operand },
    /// `dst = a ^ b`
    Xor { dst: FieldId, a: Operand, b: Operand },
    /// `dst = popcount(a)` — modeled as a single op; on real Tofino a
    /// popcount chain costs many stages (the N3IC scalability problem,
    /// §2), which the deploy-time cost model accounts for separately.
    Popcnt { dst: FieldId, a: Operand },
    /// `dst = reg[index]`
    RegRead { dst: FieldId, reg: RegId, index: Operand },
    /// `reg[index] = a`
    RegWrite { reg: RegId, index: Operand, a: Operand },
    /// `dst = reg[index]; reg[index] = a` — the single-stage atomic
    /// read-modify-write PISA stateful ALUs provide.
    RegReadWrite { dst: FieldId, reg: RegId, index: Operand, a: Operand },
    /// `dst = reg[index]; reg[index] = min(reg[index] + by, max)` —
    /// saturating counter RMW (packet counters, window warm-up tracking).
    RegIncrSat { dst: FieldId, reg: RegId, index: Operand, by: i64, max: i64 },
    /// `dst = reg[index]; reg[index] = ((reg[index] << shift) | a) & mask` —
    /// the shift-insert RMW used to pack a sliding window of small codes
    /// into one register cell (the paper's footnote-2 packing).
    RegShiftInsert { dst: FieldId, reg: RegId, index: Operand, a: Operand, shift: u8, mask: u64 },
}

impl AluOp {
    /// The action-data slots this op references.
    pub fn param_slots(&self) -> Vec<usize> {
        let mut slots = Vec::new();
        let mut push = |op: &Operand| {
            if let Operand::Param(i) = op {
                slots.push(*i);
            }
        };
        match self {
            AluOp::Set { a, .. } | AluOp::Popcnt { a, .. } => push(a),
            AluOp::Shl { a, .. } | AluOp::Shr { a, .. } => push(a),
            AluOp::Add { a, b, .. }
            | AluOp::Sub { a, b, .. }
            | AluOp::Min { a, b, .. }
            | AluOp::Max { a, b, .. }
            | AluOp::And { a, b, .. }
            | AluOp::Or { a, b, .. }
            | AluOp::Xor { a, b, .. } => {
                push(a);
                push(b);
            }
            AluOp::RegRead { index, .. } | AluOp::RegIncrSat { index, .. } => push(index),
            AluOp::RegWrite { index, a, .. }
            | AluOp::RegReadWrite { index, a, .. }
            | AluOp::RegShiftInsert { index, a, .. } => {
                push(index);
                push(a);
            }
        }
        slots
    }

    /// The PHV field written by this op, if any.
    pub fn dst_field(&self) -> Option<FieldId> {
        match self {
            AluOp::Set { dst, .. }
            | AluOp::Add { dst, .. }
            | AluOp::Sub { dst, .. }
            | AluOp::Shl { dst, .. }
            | AluOp::Shr { dst, .. }
            | AluOp::Min { dst, .. }
            | AluOp::Max { dst, .. }
            | AluOp::And { dst, .. }
            | AluOp::Or { dst, .. }
            | AluOp::Xor { dst, .. }
            | AluOp::Popcnt { dst, .. }
            | AluOp::RegRead { dst, .. }
            | AluOp::RegReadWrite { dst, .. }
            | AluOp::RegIncrSat { dst, .. }
            | AluOp::RegShiftInsert { dst, .. } => Some(*dst),
            AluOp::RegWrite { .. } => None,
        }
    }

    /// Rewrites every field reference through `f` (PHV compaction).
    pub fn remap_fields(&mut self, f: &impl Fn(FieldId) -> FieldId) {
        let remap_op = |op: &mut Operand| {
            if let Operand::Field(x) = op {
                *x = f(*x);
            }
        };
        match self {
            AluOp::Set { dst, a } | AluOp::Popcnt { dst, a } => {
                *dst = f(*dst);
                remap_op(a);
            }
            AluOp::Shl { dst, a, .. } | AluOp::Shr { dst, a, .. } => {
                *dst = f(*dst);
                remap_op(a);
            }
            AluOp::Add { dst, a, b }
            | AluOp::Sub { dst, a, b }
            | AluOp::Min { dst, a, b }
            | AluOp::Max { dst, a, b }
            | AluOp::And { dst, a, b }
            | AluOp::Or { dst, a, b }
            | AluOp::Xor { dst, a, b } => {
                *dst = f(*dst);
                remap_op(a);
                remap_op(b);
            }
            AluOp::RegRead { dst, index, .. } => {
                *dst = f(*dst);
                remap_op(index);
            }
            AluOp::RegIncrSat { dst, index, .. } => {
                *dst = f(*dst);
                remap_op(index);
            }
            AluOp::RegWrite { index, a, .. } => {
                remap_op(index);
                remap_op(a);
            }
            AluOp::RegReadWrite { dst, index, a, .. }
            | AluOp::RegShiftInsert { dst, index, a, .. } => {
                *dst = f(*dst);
                remap_op(index);
                remap_op(a);
            }
        }
    }

    /// The PHV fields read by this op.
    pub fn src_fields(&self) -> Vec<FieldId> {
        let mut out = Vec::new();
        let mut push = |op: &Operand| {
            if let Operand::Field(f) = op {
                out.push(*f);
            }
        };
        match self {
            AluOp::Set { a, .. } | AluOp::Popcnt { a, .. } => push(a),
            AluOp::Shl { a, .. } | AluOp::Shr { a, .. } => push(a),
            AluOp::Add { a, b, .. }
            | AluOp::Sub { a, b, .. }
            | AluOp::Min { a, b, .. }
            | AluOp::Max { a, b, .. }
            | AluOp::And { a, b, .. }
            | AluOp::Or { a, b, .. }
            | AluOp::Xor { a, b, .. } => {
                push(a);
                push(b);
            }
            AluOp::RegRead { index, .. } | AluOp::RegIncrSat { index, .. } => push(index),
            AluOp::RegWrite { index, a, .. }
            | AluOp::RegReadWrite { index, a, .. }
            | AluOp::RegShiftInsert { index, a, .. } => {
                push(index);
                push(a);
            }
        }
        out
    }
}

/// An action: an ordered list of ALU ops executed on match.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Action {
    /// Diagnostic name.
    pub name: String,
    /// Ops executed in order (sequential semantics within one action).
    pub ops: Vec<AluOp>,
}

impl Action {
    /// Creates an empty (no-op) action.
    pub fn new(name: &str) -> Self {
        Action { name: name.to_string(), ops: Vec::new() }
    }

    /// Appends an op (builder style).
    pub fn with(mut self, op: AluOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Highest referenced action-data slot + 1 (0 when none).
    pub fn param_arity(&self) -> usize {
        self.ops.iter().flat_map(|o| o.param_slots()).max().map_or(0, |m| m + 1)
    }

    /// Executes the action against a PHV with the matched entry's
    /// action-data words.
    pub fn execute(&self, phv: &mut Phv, params: &[i64], regs: &mut RegFile) {
        let read = |phv: &Phv, op: &Operand| -> i64 {
            match op {
                Operand::Field(f) => phv.get(*f),
                Operand::Const(c) => *c,
                Operand::Param(i) => *params
                    .get(*i)
                    .unwrap_or_else(|| panic!("action {} missing param {i}", self.name)),
            }
        };
        for op in &self.ops {
            match op {
                AluOp::Set { dst, a } => {
                    let v = read(phv, a);
                    phv.set(*dst, v);
                }
                AluOp::Add { dst, a, b } => {
                    let v = read(phv, a).wrapping_add(read(phv, b));
                    phv.set(*dst, v);
                }
                AluOp::Sub { dst, a, b } => {
                    let v = read(phv, a).wrapping_sub(read(phv, b));
                    phv.set(*dst, v);
                }
                AluOp::Shl { dst, a, amount } => {
                    let v = read(phv, a) << amount;
                    phv.set(*dst, v);
                }
                AluOp::Shr { dst, a, amount } => {
                    let v = read(phv, a) >> amount;
                    phv.set(*dst, v);
                }
                AluOp::Min { dst, a, b } => {
                    let v = read(phv, a).min(read(phv, b));
                    phv.set(*dst, v);
                }
                AluOp::Max { dst, a, b } => {
                    let v = read(phv, a).max(read(phv, b));
                    phv.set(*dst, v);
                }
                AluOp::And { dst, a, b } => {
                    let v = read(phv, a) & read(phv, b);
                    phv.set(*dst, v);
                }
                AluOp::Or { dst, a, b } => {
                    let v = read(phv, a) | read(phv, b);
                    phv.set(*dst, v);
                }
                AluOp::Xor { dst, a, b } => {
                    let v = read(phv, a) ^ read(phv, b);
                    phv.set(*dst, v);
                }
                AluOp::Popcnt { dst, a } => {
                    let v = (read(phv, a) as u64).count_ones() as i64;
                    phv.set(*dst, v);
                }
                AluOp::RegRead { dst, reg, index } => {
                    let idx = read(phv, index) as usize;
                    let v = regs.read(*reg, idx);
                    phv.set(*dst, v);
                }
                AluOp::RegWrite { reg, index, a } => {
                    let idx = read(phv, index) as usize;
                    let v = read(phv, a);
                    regs.write(*reg, idx, v);
                }
                AluOp::RegReadWrite { dst, reg, index, a } => {
                    let idx = read(phv, index) as usize;
                    let old = regs.read(*reg, idx);
                    let v = read(phv, a);
                    regs.write(*reg, idx, v);
                    phv.set(*dst, old);
                }
                AluOp::RegIncrSat { dst, reg, index, by, max } => {
                    let idx = read(phv, index) as usize;
                    let old = regs.read(*reg, idx);
                    regs.write(*reg, idx, (old + by).min(*max));
                    phv.set(*dst, old);
                }
                AluOp::RegShiftInsert { dst, reg, index, a, shift, mask } => {
                    let idx = read(phv, index) as usize;
                    let old = regs.read(*reg, idx);
                    let v = read(phv, a);
                    let new = (((old << shift) | v) as u64 & mask) as i64;
                    regs.write(*reg, idx, new);
                    phv.set(*dst, old);
                }
            }
        }
    }
}

// --- serde (control-daemon artifact format) ----------------------------
//
// Enums carry a one-byte discriminant in declaration order; unknown tags
// surface as typed decode errors, never panics.

impl serde::Serialize for RegId {
    fn serialize(&self, w: &mut serde::Writer) {
        self.0.serialize(w);
    }
}

impl<'de> serde::Deserialize<'de> for RegId {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        Ok(RegId(serde::Deserialize::deserialize(r)?))
    }
}

impl serde::Serialize for Operand {
    fn serialize(&self, w: &mut serde::Writer) {
        match self {
            Operand::Field(f) => {
                w.write_u8(0);
                f.serialize(w);
            }
            Operand::Const(c) => {
                w.write_u8(1);
                c.serialize(w);
            }
            Operand::Param(i) => {
                w.write_u8(2);
                i.serialize(w);
            }
        }
    }
}

impl<'de> serde::Deserialize<'de> for Operand {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        Ok(match r.read_u8("Operand")? {
            0 => Operand::Field(serde::Deserialize::deserialize(r)?),
            1 => Operand::Const(serde::Deserialize::deserialize(r)?),
            2 => Operand::Param(serde::Deserialize::deserialize(r)?),
            tag => return Err(serde::DecodeError::BadTag { what: "Operand", tag }),
        })
    }
}

impl serde::Serialize for AluOp {
    fn serialize(&self, w: &mut serde::Writer) {
        match self {
            AluOp::Set { dst, a } => {
                w.write_u8(0);
                dst.serialize(w);
                a.serialize(w);
            }
            AluOp::Add { dst, a, b } => {
                w.write_u8(1);
                dst.serialize(w);
                a.serialize(w);
                b.serialize(w);
            }
            AluOp::Sub { dst, a, b } => {
                w.write_u8(2);
                dst.serialize(w);
                a.serialize(w);
                b.serialize(w);
            }
            AluOp::Shl { dst, a, amount } => {
                w.write_u8(3);
                dst.serialize(w);
                a.serialize(w);
                amount.serialize(w);
            }
            AluOp::Shr { dst, a, amount } => {
                w.write_u8(4);
                dst.serialize(w);
                a.serialize(w);
                amount.serialize(w);
            }
            AluOp::Min { dst, a, b } => {
                w.write_u8(5);
                dst.serialize(w);
                a.serialize(w);
                b.serialize(w);
            }
            AluOp::Max { dst, a, b } => {
                w.write_u8(6);
                dst.serialize(w);
                a.serialize(w);
                b.serialize(w);
            }
            AluOp::And { dst, a, b } => {
                w.write_u8(7);
                dst.serialize(w);
                a.serialize(w);
                b.serialize(w);
            }
            AluOp::Or { dst, a, b } => {
                w.write_u8(8);
                dst.serialize(w);
                a.serialize(w);
                b.serialize(w);
            }
            AluOp::Xor { dst, a, b } => {
                w.write_u8(9);
                dst.serialize(w);
                a.serialize(w);
                b.serialize(w);
            }
            AluOp::Popcnt { dst, a } => {
                w.write_u8(10);
                dst.serialize(w);
                a.serialize(w);
            }
            AluOp::RegRead { dst, reg, index } => {
                w.write_u8(11);
                dst.serialize(w);
                reg.serialize(w);
                index.serialize(w);
            }
            AluOp::RegWrite { reg, index, a } => {
                w.write_u8(12);
                reg.serialize(w);
                index.serialize(w);
                a.serialize(w);
            }
            AluOp::RegReadWrite { dst, reg, index, a } => {
                w.write_u8(13);
                dst.serialize(w);
                reg.serialize(w);
                index.serialize(w);
                a.serialize(w);
            }
            AluOp::RegIncrSat { dst, reg, index, by, max } => {
                w.write_u8(14);
                dst.serialize(w);
                reg.serialize(w);
                index.serialize(w);
                by.serialize(w);
                max.serialize(w);
            }
            AluOp::RegShiftInsert { dst, reg, index, a, shift, mask } => {
                w.write_u8(15);
                dst.serialize(w);
                reg.serialize(w);
                index.serialize(w);
                a.serialize(w);
                shift.serialize(w);
                mask.serialize(w);
            }
        }
    }
}

impl<'de> serde::Deserialize<'de> for AluOp {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        use serde::Deserialize as D;
        Ok(match r.read_u8("AluOp")? {
            0 => AluOp::Set { dst: D::deserialize(r)?, a: D::deserialize(r)? },
            1 => {
                AluOp::Add { dst: D::deserialize(r)?, a: D::deserialize(r)?, b: D::deserialize(r)? }
            }
            2 => {
                AluOp::Sub { dst: D::deserialize(r)?, a: D::deserialize(r)?, b: D::deserialize(r)? }
            }
            3 => AluOp::Shl {
                dst: D::deserialize(r)?,
                a: D::deserialize(r)?,
                amount: D::deserialize(r)?,
            },
            4 => AluOp::Shr {
                dst: D::deserialize(r)?,
                a: D::deserialize(r)?,
                amount: D::deserialize(r)?,
            },
            5 => {
                AluOp::Min { dst: D::deserialize(r)?, a: D::deserialize(r)?, b: D::deserialize(r)? }
            }
            6 => {
                AluOp::Max { dst: D::deserialize(r)?, a: D::deserialize(r)?, b: D::deserialize(r)? }
            }
            7 => {
                AluOp::And { dst: D::deserialize(r)?, a: D::deserialize(r)?, b: D::deserialize(r)? }
            }
            8 => {
                AluOp::Or { dst: D::deserialize(r)?, a: D::deserialize(r)?, b: D::deserialize(r)? }
            }
            9 => {
                AluOp::Xor { dst: D::deserialize(r)?, a: D::deserialize(r)?, b: D::deserialize(r)? }
            }
            10 => AluOp::Popcnt { dst: D::deserialize(r)?, a: D::deserialize(r)? },
            11 => AluOp::RegRead {
                dst: D::deserialize(r)?,
                reg: D::deserialize(r)?,
                index: D::deserialize(r)?,
            },
            12 => AluOp::RegWrite {
                reg: D::deserialize(r)?,
                index: D::deserialize(r)?,
                a: D::deserialize(r)?,
            },
            13 => AluOp::RegReadWrite {
                dst: D::deserialize(r)?,
                reg: D::deserialize(r)?,
                index: D::deserialize(r)?,
                a: D::deserialize(r)?,
            },
            14 => AluOp::RegIncrSat {
                dst: D::deserialize(r)?,
                reg: D::deserialize(r)?,
                index: D::deserialize(r)?,
                by: D::deserialize(r)?,
                max: D::deserialize(r)?,
            },
            15 => AluOp::RegShiftInsert {
                dst: D::deserialize(r)?,
                reg: D::deserialize(r)?,
                index: D::deserialize(r)?,
                a: D::deserialize(r)?,
                shift: D::deserialize(r)?,
                mask: D::deserialize(r)?,
            },
            tag => return Err(serde::DecodeError::BadTag { what: "AluOp", tag }),
        })
    }
}

serde::impl_serde_struct!(Action { name, ops });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::PhvLayout;
    use crate::register::{RegFile, RegisterArray};

    fn setup() -> (PhvLayout, FieldId, FieldId, FieldId) {
        let mut l = PhvLayout::new();
        let a = l.add_signed_field("a", 16);
        let b = l.add_signed_field("b", 16);
        let c = l.add_signed_field("c", 16);
        (l, a, b, c)
    }

    #[test]
    fn arithmetic_ops() {
        let (l, a, b, c) = setup();
        let mut phv = l.instantiate();
        phv.set(a, 7);
        phv.set(b, -3);
        let act = Action::new("t").with(AluOp::Add {
            dst: c,
            a: Operand::Field(a),
            b: Operand::Field(b),
        });
        let mut regs = RegFile::new(vec![]);
        act.execute(&mut phv, &[], &mut regs);
        assert_eq!(phv.get(c), 4);
    }

    #[test]
    fn param_operands_read_action_data() {
        let (l, a, _b, _c) = setup();
        let mut phv = l.instantiate();
        let act = Action::new("t").with(AluOp::Set { dst: a, a: Operand::Param(1) });
        let mut regs = RegFile::new(vec![]);
        act.execute(&mut phv, &[10, 42], &mut regs);
        assert_eq!(phv.get(a), 42);
    }

    #[test]
    fn param_arity_counts_max_slot() {
        let (_, a, b, _) = setup();
        let act = Action::new("t")
            .with(AluOp::Set { dst: a, a: Operand::Param(0) })
            .with(AluOp::Add { dst: b, a: Operand::Param(3), b: Operand::Const(1) });
        assert_eq!(act.param_arity(), 4);
    }

    #[test]
    fn min_max_shift_ops() {
        let (l, a, b, c) = setup();
        let mut phv = l.instantiate();
        phv.set(a, 5);
        phv.set(b, 9);
        let act = Action::new("t")
            .with(AluOp::Min { dst: c, a: Operand::Field(a), b: Operand::Field(b) })
            .with(AluOp::Shl { dst: c, a: Operand::Field(c), amount: 2 });
        let mut regs = RegFile::new(vec![]);
        act.execute(&mut phv, &[], &mut regs);
        assert_eq!(phv.get(c), 20);
    }

    #[test]
    fn popcnt() {
        let (l, a, b, _) = setup();
        let mut phv = l.instantiate();
        phv.set(a, 0b1011);
        let act = Action::new("t").with(AluOp::Popcnt { dst: b, a: Operand::Field(a) });
        let mut regs = RegFile::new(vec![]);
        act.execute(&mut phv, &[], &mut regs);
        assert_eq!(phv.get(b), 3);
    }

    #[test]
    fn register_read_modify_write() {
        let (l, a, b, _) = setup();
        let mut phv = l.instantiate();
        phv.set(a, 99);
        let mut regs = RegFile::new(vec![RegisterArray::new("r", 16, 4)]);
        let r = RegId(0);
        let act = Action::new("t").with(AluOp::RegReadWrite {
            dst: b,
            reg: r,
            index: Operand::Const(2),
            a: Operand::Field(a),
        });
        act.execute(&mut phv, &[], &mut regs);
        assert_eq!(phv.get(b), 0); // old value
        assert_eq!(regs.read(r, 2), 99); // new value written
    }

    #[test]
    fn reg_incr_saturates() {
        let (l, _a, b, _) = setup();
        let mut phv = l.instantiate();
        let mut regs = RegFile::new(vec![RegisterArray::new("cnt", 8, 2)]);
        let r = RegId(0);
        let act = Action::new("t").with(AluOp::RegIncrSat {
            dst: b,
            reg: r,
            index: Operand::Const(0),
            by: 1,
            max: 3,
        });
        for expected_old in [0, 1, 2, 3, 3] {
            act.execute(&mut phv, &[], &mut regs);
            assert_eq!(phv.get(b), expected_old);
        }
        assert_eq!(regs.read(r, 0), 3);
    }

    #[test]
    fn reg_shift_insert_packs_codes() {
        let (l, a, b, _) = setup();
        let mut phv = l.instantiate();
        let mut regs = RegFile::new(vec![RegisterArray::new("win", 32, 2)]);
        let r = RegId(0);
        let act = Action::new("t").with(AluOp::RegShiftInsert {
            dst: b,
            reg: r,
            index: Operand::Const(1),
            a: Operand::Field(a),
            shift: 4,
            mask: 0xffff,
        });
        for code in [0x1i64, 0x2, 0x3, 0x4] {
            phv.set(a, code);
            act.execute(&mut phv, &[], &mut regs);
        }
        // Register holds the last 4 codes, newest in the low nibble.
        assert_eq!(regs.read(r, 1), 0x1234);
        // The returned old value was the pre-insert window.
        assert_eq!(phv.get(b), 0x123);
    }

    #[test]
    fn truncation_applies_after_add() {
        let mut l = PhvLayout::new();
        let a = l.add_field("a", 8);
        let mut phv = l.instantiate();
        phv.set(a, 200);
        let act = Action::new("t").with(AluOp::Add {
            dst: a,
            a: Operand::Field(a),
            b: Operand::Const(100),
        });
        let mut regs = RegFile::new(vec![]);
        act.execute(&mut phv, &[], &mut regs);
        assert_eq!(phv.get(a), 44); // 300 mod 256
    }

    #[test]
    fn dataflow_introspection() {
        let (_, a, b, c) = setup();
        let op = AluOp::Add { dst: c, a: Operand::Field(a), b: Operand::Field(b) };
        assert_eq!(op.dst_field(), Some(c));
        assert_eq!(op.src_fields(), vec![a, b]);
    }
}

//! Switch programs: deployment (stage allocation + resource validation) and
//! packet processing.
//!
//! A [`SwitchProgram`] is the loadable artifact the Pegasus compiler emits —
//! the moral equivalent of a compiled P4 binary. [`SwitchProgram::deploy`]
//! performs what the Tofino compiler does: it assigns tables to pipeline
//! stages respecting data dependencies, checks every resource limit in
//! [`SwitchConfig`], and either produces a
//! runnable [`LoadedProgram`] or a precise [`DeployError`]. The paper's
//! Table 6 columns are exactly the fields of [`ResourceReport`].

use crate::config::SwitchConfig;
use crate::mat::{Table, TableUsage};
use crate::phv::{FieldId, Phv, PhvLayout};
use crate::register::{RegFile, RegisterArray};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A deployable dataplane program.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SwitchProgram {
    /// Program name (for reports).
    pub name: String,
    /// PHV field declarations.
    pub layout: PhvLayout,
    /// Stateful register arrays.
    pub registers: Vec<RegisterArray>,
    /// Tables in logical (dependency) order.
    pub tables: Vec<Table>,
    /// Extra pipeline stages consumed outside the MAT model — e.g. N3IC's
    /// popcount chains, which the paper reports as 14 stages per popcnt
    /// (§2). Charged during stage allocation.
    pub extra_stages: usize,
    /// Stateful bits this program keeps per tracked flow (the Table 6
    /// "Stateful bits/flow" column). Declared by the compiler because only
    /// it knows which registers are per-flow vs global.
    pub stateful_bits_per_flow: u64,
    /// Fields whose values must survive to the end of the pipeline
    /// (program outputs read by the harness). PHV compaction never frees
    /// their containers.
    pub keep_alive: Vec<FieldId>,
}

impl SwitchProgram {
    /// Creates an empty program.
    pub fn new(name: &str, layout: PhvLayout) -> Self {
        SwitchProgram {
            name: name.to_string(),
            layout,
            registers: Vec::new(),
            tables: Vec::new(),
            extra_stages: 0,
            stateful_bits_per_flow: 0,
            keep_alive: Vec::new(),
        }
    }

    /// PHV container reuse by liveness analysis — what production P4
    /// compilers do to fit programs into the header vector.
    ///
    /// Two fields may share a container when their live ranges (table-index
    /// intervals between first and last reference) do not overlap and they
    /// agree on width and signedness. A field only *takes over* a freed
    /// container when its first reference is an unconditional write (the
    /// table's default action writes it), because conditionally-written
    /// fields rely on the PHV's zero initialization. Input and `keep_alive`
    /// fields keep their own containers alive across the whole pipeline.
    ///
    /// Returns the bits saved and the old-to-new field mapping (callers
    /// must remap any externally held [`FieldId`]s through it).
    pub fn compact_phv(&mut self, input_fields: &[FieldId]) -> (u64, PhvRemap) {
        let n = self.layout.len();
        // Dependency levelization: level[t] = 1 + max level of conflicting
        // predecessors. Liveness is measured in levels, and containers are
        // reused only across strictly separated levels, so the false
        // write-after-read dependencies introduced by reuse are always
        // satisfied by the original stage assignment — compaction cannot
        // inflate the stage count.
        let reads: Vec<Vec<FieldId>> = self.tables.iter().map(|t| t.reads()).collect();
        let writes: Vec<Vec<FieldId>> = self.tables.iter().map(|t| t.writes()).collect();
        let mut level = vec![0usize; self.tables.len()];
        for i in 0..self.tables.len() {
            for j in 0..i {
                let conflict = writes[j].iter().any(|f| reads[i].contains(f))
                    || reads[j].iter().any(|f| writes[i].contains(f))
                    || writes[j].iter().any(|f| writes[i].contains(f));
                if conflict {
                    level[i] = level[i].max(level[j] + 1);
                }
            }
        }
        let t_end = level.iter().copied().max().unwrap_or(0) + 1;
        // Live intervals (in dependency levels AND list positions) plus
        // write-kind per field. Reuse must respect both orders: the
        // simulator executes tables in list order, while stage allocation
        // follows dependency levels.
        let mut first: Vec<Option<(usize, usize)>> = vec![None; n]; // (level, list)
        let mut last: Vec<(usize, usize)> = vec![(0, 0); n];
        let mut first_is_uncond_write: Vec<bool> = vec![false; n];
        let touch = |f: usize,
                     lv: usize,
                     li: usize,
                     is_uncond_write: bool,
                     first: &mut Vec<Option<(usize, usize)>>,
                     last: &mut Vec<(usize, usize)>,
                     fiuw: &mut Vec<bool>| {
            if first[f].is_none() {
                first[f] = Some((lv, li));
                fiuw[f] = is_uncond_write;
            }
            last[f] = (last[f].0.max(lv), last[f].1.max(li));
        };
        for (ti, table) in self.tables.iter().enumerate() {
            let lv = level[ti];
            // Reads: match keys + every action's source fields.
            for (f, _) in &table.keys {
                touch(f.0, lv, ti, false, &mut first, &mut last, &mut first_is_uncond_write);
            }
            let default_idx = table.default_action.as_ref().map(|(i, _)| *i);
            for (ai, action) in table.actions.iter().enumerate() {
                let uncond = Some(ai) == default_idx;
                for op in &action.ops {
                    for f in op.src_fields() {
                        touch(
                            f.0,
                            lv,
                            ti,
                            false,
                            &mut first,
                            &mut last,
                            &mut first_is_uncond_write,
                        );
                    }
                    if let Some(f) = op.dst_field() {
                        // Writes count as both def and use boundary.
                        touch(
                            f.0,
                            lv,
                            ti,
                            uncond,
                            &mut first,
                            &mut last,
                            &mut first_is_uncond_write,
                        );
                    }
                }
            }
        }
        for f in input_fields {
            // Written by the parser before table 0; may be freed after
            // their last read but never take over another container.
            if first[f.0].is_none() {
                first[f.0] = Some((0, 0));
            }
            first[f.0] = Some((0, 0));
            first_is_uncond_write[f.0] = false;
        }
        for f in &self.keep_alive {
            if first[f.0].is_none() {
                first[f.0] = Some((0, 0));
            }
            last[f.0] = (t_end, self.tables.len());
            first_is_uncond_write[f.0] = false; // rely on zero init
        }

        // Greedy interval assignment: fields in first-reference order.
        let mut order: Vec<usize> = (0..n).filter(|&f| first[f].is_some()).collect();
        order.sort_by_key(|&f| first[f].unwrap());
        // Pools of freed containers keyed by (bits, signed):
        // (container_field, (last_level, last_list)).
        use std::collections::HashMap;
        type FreedPool = Vec<(usize, (usize, usize))>;
        let mut pools: HashMap<(u8, bool), FreedPool> = HashMap::new();
        let mut assignment: Vec<usize> = (0..n).collect();
        let mut is_container: Vec<bool> = vec![false; n];
        for &f in &order {
            let def = self.layout.def(FieldId(f));
            let key = (def.bits, def.signed);
            let (start_lv, start_li) = first[f].unwrap();
            let mut assigned = None;
            if first_is_uncond_write[f] {
                if let Some(pool) = pools.get_mut(&key) {
                    // Reusable when the container's last reference precedes
                    // this def in BOTH dependency level (stage safety) and
                    // list position (sequential-execution safety).
                    if let Some(pos) = pool
                        .iter()
                        .position(|&(_, (l_lv, l_li))| l_lv < start_lv && l_li < start_li)
                    {
                        let (container, _) = pool.swap_remove(pos);
                        assigned = Some(container);
                    }
                }
            }
            let container = assigned.unwrap_or(f);
            assignment[f] = container;
            is_container[container] = true;
            // The container frees after this field's last reference.
            pools.entry(key).or_default().push((container, last[f]));
        }

        // Rebuild the layout with only containers; remap ids.
        let mut new_layout = PhvLayout::new();
        let mut new_id: Vec<Option<FieldId>> = vec![None; n];
        for (fid, def) in self.layout.iter() {
            if is_container[fid.0] {
                let id = if def.signed {
                    new_layout.add_signed_field(&def.name, def.bits)
                } else {
                    new_layout.add_field(&def.name, def.bits)
                };
                new_id[fid.0] = Some(id);
            }
        }
        let remap = |f: FieldId| -> FieldId { new_id[assignment[f.0]].expect("container exists") };
        for table in &mut self.tables {
            for (f, _) in &mut table.keys {
                *f = remap(*f);
            }
            for action in &mut table.actions {
                for op in &mut action.ops {
                    op.remap_fields(&remap);
                }
            }
        }
        self.keep_alive = self.keep_alive.iter().map(|&f| remap(f)).collect();
        let saved = self.layout.total_bits().saturating_sub(new_layout.total_bits());
        self.layout = new_layout;
        let map: Vec<Option<FieldId>> = (0..n).map(|f| new_id[assignment[f]]).collect();
        (saved, PhvRemap { map })
    }
}

/// Old-to-new field mapping produced by [`SwitchProgram::compact_phv`].
#[derive(Clone, Debug)]
pub struct PhvRemap {
    map: Vec<Option<FieldId>>,
}

impl PhvRemap {
    /// The new id of a pre-compaction field (panics when the field was
    /// dead and dropped — externally held fields should be in `keep_alive`
    /// or the input list).
    pub fn get(&self, old: FieldId) -> FieldId {
        self.map[old.0].unwrap_or_else(|| panic!("field {old:?} was eliminated"))
    }
}

/// Why a program failed to deploy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeployError {
    /// PHV layout exceeds the header-vector capacity.
    PhvOverflow {
        /// Bits requested by the layout.
        used: u64,
        /// Bits available.
        capacity: u64,
    },
    /// A register array uses a width the hardware does not support.
    BadRegisterWidth {
        /// Offending array name.
        register: String,
        /// Its width.
        width: u8,
    },
    /// Register SRAM budget exhausted.
    RegisterOverflow {
        /// Bits requested.
        used: u64,
        /// Bits available.
        capacity: u64,
    },
    /// The dependency chain needs more stages than the pipeline has.
    OutOfStages {
        /// Stages required.
        needed: usize,
        /// Stages available.
        available: usize,
    },
    /// Aggregate SRAM demand exceeds pipeline capacity.
    SramOverflow {
        /// Bits requested.
        used: u64,
        /// Bits available.
        capacity: u64,
    },
    /// Aggregate TCAM demand exceeds pipeline capacity.
    TcamOverflow {
        /// Bits requested.
        used: u64,
        /// Bits available.
        capacity: u64,
    },
    /// One table's action data exceeds the per-stage action bus width.
    BusOverflow {
        /// Offending table name.
        table: String,
        /// Bits requested in one stage.
        used: u64,
        /// Bus width.
        capacity: u64,
    },
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::PhvOverflow { used, capacity } => {
                write!(f, "PHV overflow: {used} bits > {capacity} capacity")
            }
            DeployError::BadRegisterWidth { register, width } => {
                write!(f, "register {register}: unsupported width {width}")
            }
            DeployError::RegisterOverflow { used, capacity } => {
                write!(f, "register SRAM overflow: {used} > {capacity}")
            }
            DeployError::OutOfStages { needed, available } => {
                write!(f, "needs {needed} stages, pipeline has {available}")
            }
            DeployError::SramOverflow { used, capacity } => {
                write!(f, "SRAM overflow: {used} > {capacity}")
            }
            DeployError::TcamOverflow { used, capacity } => {
                write!(f, "TCAM overflow: {used} > {capacity}")
            }
            DeployError::BusOverflow { table, used, capacity } => {
                write!(f, "table {table}: action bus overflow {used} > {capacity}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// Per-program resource utilization — the Table 6 row for one model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// Stateful register bits per tracked flow.
    pub stateful_bits_per_flow: u64,
    /// Fraction of pipeline SRAM consumed (0..1), tables + per-flow state
    /// excluded (flow state is reported separately like the paper does).
    pub sram_frac: f64,
    /// Fraction of pipeline TCAM consumed (0..1).
    pub tcam_frac: f64,
    /// Fraction of aggregate action-bus bits consumed (0..1).
    pub bus_frac: f64,
    /// Pipeline stages used.
    pub stages_used: usize,
    /// Total SRAM bits.
    pub sram_bits: u64,
    /// Total TCAM bits.
    pub tcam_bits: u64,
    /// Total action-bus bits across stages.
    pub bus_bits: u64,
    /// Total table entries.
    pub entries: u64,
}

/// A validated, runnable program instance.
///
/// Processing takes `&self`: the lookup counter is atomic and the stateful
/// registers sit behind a lock (taken once per packet, so register
/// read-modify-writes stay atomic per packet — the same guarantee the
/// hardware gives a packet traversing the pipeline). A loaded program can
/// therefore be shared across threads and serve concurrently.
pub struct LoadedProgram {
    program: SwitchProgram,
    config: SwitchConfig,
    /// `stage_of[i]` = last stage occupied by table `i`.
    stage_of: Vec<usize>,
    stages_used: usize,
    regs: Mutex<RegFile>,
    usages: Vec<TableUsage>,
    /// Cumulative table lookups executed (for bandwidth accounting).
    lookups: AtomicU64,
}

impl Clone for LoadedProgram {
    fn clone(&self) -> Self {
        LoadedProgram {
            program: self.program.clone(),
            config: self.config.clone(),
            stage_of: self.stage_of.clone(),
            stages_used: self.stages_used,
            regs: Mutex::new(self.regs.lock().expect("register lock poisoned").clone()),
            usages: self.usages.clone(),
            lookups: AtomicU64::new(self.lookups.load(Ordering::Relaxed)),
        }
    }
}

impl fmt::Debug for LoadedProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoadedProgram")
            .field("name", &self.program.name)
            .field("tables", &self.program.tables.len())
            .field("stages_used", &self.stages_used)
            .finish()
    }
}

impl SwitchProgram {
    /// Statically validates the program's resource demand against a switch
    /// configuration **without** loading it: PHV capacity, register widths
    /// and SRAM budget, per-table action-bus fit, aggregate SRAM/TCAM, and
    /// stage allocation. This is exactly the admission check
    /// [`deploy`](SwitchProgram::deploy) performs, exposed non-consuming so
    /// static analysis (the `pegasus-core` verifier) can account resources
    /// without cloning the program or building runtime state.
    ///
    /// Returns the table stage assignment (`stage_of[i]` = last stage
    /// occupied by table `i`) and the total stage count on success.
    pub fn check_resources(
        &self,
        config: &SwitchConfig,
    ) -> Result<(Vec<usize>, usize), DeployError> {
        // 1. PHV capacity.
        let phv_used = self.layout.total_bits();
        if phv_used > config.phv_bits {
            return Err(DeployError::PhvOverflow { used: phv_used, capacity: config.phv_bits });
        }
        // 2. Registers.
        for r in &self.registers {
            if !config.supports_register_width(r.width_bits) {
                return Err(DeployError::BadRegisterWidth {
                    register: r.name.clone(),
                    width: r.width_bits,
                });
            }
        }
        let reg_bits: u64 = self.registers.iter().map(|r| r.total_bits()).sum();
        if reg_bits > config.register_bits_total {
            return Err(DeployError::RegisterOverflow {
                used: reg_bits,
                capacity: config.register_bits_total,
            });
        }
        // 3. Per-table usage, bus check, aggregate SRAM/TCAM.
        let usages: Vec<TableUsage> = self.tables.iter().map(|t| t.usage(&self.layout)).collect();
        for (t, u) in self.tables.iter().zip(usages.iter()) {
            if u.bus_bits > config.action_bus_bits_per_stage {
                return Err(DeployError::BusOverflow {
                    table: t.name.clone(),
                    used: u.bus_bits,
                    capacity: config.action_bus_bits_per_stage,
                });
            }
        }
        let sram_total: u64 = usages.iter().map(|u| u.sram_bits).sum();
        let tcam_total: u64 = usages.iter().map(|u| u.tcam_bits).sum();
        if sram_total > config.total_sram_bits() {
            return Err(DeployError::SramOverflow {
                used: sram_total,
                capacity: config.total_sram_bits(),
            });
        }
        if tcam_total > config.total_tcam_bits() {
            return Err(DeployError::TcamOverflow {
                used: tcam_total,
                capacity: config.total_tcam_bits(),
            });
        }
        // 4. Stage allocation.
        let (stage_of, stages_used) = allocate_stages(&self.tables, &usages, config)?;
        let total_stages = stages_used + self.extra_stages;
        if total_stages > config.stages {
            return Err(DeployError::OutOfStages {
                needed: total_stages,
                available: config.stages,
            });
        }
        Ok((stage_of, total_stages))
    }

    /// Validates the program against a switch configuration and loads it.
    pub fn deploy(mut self, config: &SwitchConfig) -> Result<LoadedProgram, DeployError> {
        let (stage_of, total_stages) = self.check_resources(config)?;
        let usages: Vec<TableUsage> = self.tables.iter().map(|t| t.usage(&self.layout)).collect();
        // Build lookup indexes and runtime state.
        for t in &mut self.tables {
            t.build_index();
        }
        let regs = RegFile::new(self.registers.clone());
        Ok(LoadedProgram {
            program: self,
            config: config.clone(),
            stage_of,
            stages_used: total_stages,
            regs: Mutex::new(regs),
            usages,
            lookups: AtomicU64::new(0),
        })
    }
}

/// Greedy in-order stage allocator.
///
/// Each table starts no earlier than one stage past every earlier table it
/// conflicts with (read-after-write, write-after-read or write-after-write
/// on any PHV field). Large tables spill across consecutive stages when one
/// stage's remaining SRAM/TCAM cannot hold them; their action data bus cost
/// is charged to their final stage.
fn allocate_stages(
    tables: &[Table],
    usages: &[TableUsage],
    config: &SwitchConfig,
) -> Result<(Vec<usize>, usize), DeployError> {
    let n = tables.len();
    let mut stage_of = vec![0usize; n];
    // Free resources per stage (grown lazily; validated against the limit
    // at the end so we can report how many stages were *needed*).
    let mut free_sram: Vec<u64> = Vec::new();
    let mut free_tcam: Vec<u64> = Vec::new();
    let mut free_bus: Vec<u64> = Vec::new();
    let ensure_stage =
        |s: usize, free_sram: &mut Vec<u64>, free_tcam: &mut Vec<u64>, free_bus: &mut Vec<u64>| {
            while free_sram.len() <= s {
                free_sram.push(config.sram_bits_per_stage);
                free_tcam.push(config.tcam_bits_per_stage);
                free_bus.push(config.action_bus_bits_per_stage);
            }
        };

    let reads: Vec<Vec<FieldId>> = tables.iter().map(|t| t.reads()).collect();
    let writes: Vec<Vec<FieldId>> = tables.iter().map(|t| t.writes()).collect();

    for i in 0..n {
        // Earliest stage after all conflicting predecessors.
        let mut earliest = 0usize;
        for j in 0..i {
            let conflict = writes[j].iter().any(|f| reads[i].contains(f))
                || reads[j].iter().any(|f| writes[i].contains(f))
                || writes[j].iter().any(|f| writes[i].contains(f));
            if conflict {
                earliest = earliest.max(stage_of[j] + 1);
            }
        }
        // Allocate SRAM/TCAM from `earliest` onward, spilling forward.
        let mut s = earliest;
        let (mut need_sram, mut need_tcam) = (usages[i].sram_bits, usages[i].tcam_bits);
        loop {
            ensure_stage(s, &mut free_sram, &mut free_tcam, &mut free_bus);
            let take_sram = need_sram.min(free_sram[s]);
            let take_tcam = need_tcam.min(free_tcam[s]);
            free_sram[s] -= take_sram;
            free_tcam[s] -= take_tcam;
            need_sram -= take_sram;
            need_tcam -= take_tcam;
            if need_sram == 0 && need_tcam == 0 {
                // Bus must fit in the final stage; spill once more if not.
                if usages[i].bus_bits <= free_bus[s] {
                    free_bus[s] -= usages[i].bus_bits;
                    break;
                }
            }
            s += 1;
            if s > 4 * config.stages {
                // Pathological demand; bail out with a stage-count error.
                return Err(DeployError::OutOfStages { needed: s, available: config.stages });
            }
        }
        stage_of[i] = s;
    }
    let stages_used = stage_of.iter().map(|&s| s + 1).max().unwrap_or(0);
    Ok((stage_of, stages_used))
}

impl LoadedProgram {
    /// The underlying program.
    pub fn program(&self) -> &SwitchProgram {
        &self.program
    }

    /// The switch configuration this program was validated against.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Last stage occupied by each table.
    pub fn stage_assignment(&self) -> &[usize] {
        &self.stage_of
    }

    /// Processes one packet: sets the given input fields on a fresh PHV,
    /// runs every table in order, and returns the final PHV.
    ///
    /// Takes `&self` — safe for concurrent callers; each packet's register
    /// read-modify-writes happen atomically under the register lock.
    pub fn process(&self, inputs: &[(FieldId, i64)]) -> Phv {
        let mut phv = self.program.layout.instantiate();
        for &(f, v) in inputs {
            phv.set(f, v);
        }
        self.run_on(&mut phv);
        phv
    }

    /// Runs the pipeline over an existing PHV (for multi-pass scenarios).
    ///
    /// Stateless programs (no register arrays — every classifier pipeline)
    /// skip the register lock entirely, so concurrent callers proceed fully
    /// in parallel; stateful programs serialize per packet, matching the
    /// per-packet atomicity of hardware register RMWs.
    pub fn run_on(&self, phv: &mut Phv) {
        self.lookups.fetch_add(self.program.tables.len() as u64, Ordering::Relaxed);
        if self.program.registers.is_empty() {
            // No register ops can reference a non-existent array; a local
            // scratch RegFile keeps the hot path lock-free.
            let mut regs = RegFile::default();
            Self::exec_tables(&self.program.tables, phv, &mut regs);
        } else {
            let mut regs = self.regs.lock().expect("register lock poisoned");
            Self::exec_tables(&self.program.tables, phv, &mut regs);
        }
    }

    /// Processes one packet through an *exclusively owned* program.
    ///
    /// Identical semantics to [`process`](LoadedProgram::process), but
    /// `&mut self` proves single ownership so the stateful registers are
    /// reached through [`Mutex::get_mut`] — no per-packet lock at all. This
    /// is the hot path of the sharded streaming engine: each shard owns its
    /// own program instance (flows are partitioned by shard), so register
    /// read-modify-writes need no synchronization.
    pub fn process_mut(&mut self, inputs: &[(FieldId, i64)]) -> Phv {
        let mut phv = self.program.layout.instantiate();
        for &(f, v) in inputs {
            phv.set(f, v);
        }
        self.run_on_mut(&mut phv);
        phv
    }

    /// Lock-free variant of [`run_on`](LoadedProgram::run_on) for owned
    /// programs (see [`process_mut`](LoadedProgram::process_mut)).
    pub fn run_on_mut(&mut self, phv: &mut Phv) {
        *self.lookups.get_mut() += self.program.tables.len() as u64;
        let regs = self.regs.get_mut().expect("register lock poisoned");
        Self::exec_tables(&self.program.tables, phv, regs);
    }

    fn exec_tables(tables: &[crate::mat::Table], phv: &mut Phv, regs: &mut RegFile) {
        for t in tables {
            if let Some((action, data)) = t.lookup(phv) {
                action.execute(phv, data, regs);
            }
        }
    }

    /// Total table lookups performed so far.
    pub fn lookup_count(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Mutable access to the stateful registers (trace replay setup).
    pub fn registers_mut(&mut self) -> &mut RegFile {
        self.regs.get_mut().expect("register lock poisoned")
    }

    /// Runs a closure over the stateful registers (read access).
    pub fn with_registers<T>(&self, f: impl FnOnce(&RegFile) -> T) -> T {
        f(&self.regs.lock().expect("register lock poisoned"))
    }

    /// Resets stateful registers and counters.
    pub fn reset_state(&mut self) {
        self.regs.get_mut().expect("register lock poisoned").clear();
        self.lookups.store(0, Ordering::Relaxed);
    }

    /// The Table 6 resource row for this program.
    pub fn resource_report(&self) -> ResourceReport {
        let sram_bits: u64 = self.usages.iter().map(|u| u.sram_bits).sum();
        let tcam_bits: u64 = self.usages.iter().map(|u| u.tcam_bits).sum();
        let bus_bits: u64 = self.usages.iter().map(|u| u.bus_bits).sum();
        let entries: u64 = self.program.tables.iter().map(|t| t.entries.len() as u64).sum();
        ResourceReport {
            stateful_bits_per_flow: self.program.stateful_bits_per_flow,
            sram_frac: sram_bits as f64 / self.config.total_sram_bits() as f64,
            tcam_frac: tcam_bits as f64 / self.config.total_tcam_bits() as f64,
            bus_frac: bus_bits as f64 / self.config.total_bus_bits() as f64,
            stages_used: self.stages_used,
            sram_bits,
            tcam_bits,
            bus_bits,
            entries,
        }
    }
}

// --- serde (control-daemon artifact format) ----------------------------

serde::impl_serde_struct!(SwitchProgram {
    name,
    layout,
    registers,
    tables,
    extra_stages,
    stateful_bits_per_flow,
    keep_alive,
});

#[cfg(test)]
mod serde_tests {
    use super::*;
    use crate::action::{Action, AluOp, Operand, RegId};
    use crate::mat::{KeyPart, MatchKind, Table, TableEntry};
    use crate::ternary::TernaryKey;

    /// A small but representative program: every operand kind, a register
    /// RMW, exact + ternary + range keys, a default action.
    fn sample_program() -> SwitchProgram {
        let mut layout = PhvLayout::new();
        let len = layout.add_field("pkt_len", 16);
        let acc = layout.add_signed_field("acc", 32);
        let mut prog = SwitchProgram::new("sample", layout);
        prog.registers.push(RegisterArray::new("win", 16, 8));
        prog.extra_stages = 1;
        prog.stateful_bits_per_flow = 44;
        prog.keep_alive.push(acc);

        let mut t = Table::new("t0", vec![(len, MatchKind::Exact), (acc, MatchKind::Ternary)]);
        let mut a = Action::new("score");
        a.ops.push(AluOp::Add { dst: acc, a: Operand::Field(len), b: Operand::Param(0) });
        a.ops.push(AluOp::RegShiftInsert {
            dst: acc,
            reg: RegId(0),
            index: Operand::Const(3),
            a: Operand::Field(len),
            shift: 4,
            mask: 0xffff,
        });
        let idx = t.add_action(a);
        t.param_widths.push(16);
        t.default_action = Some((idx, vec![7]));
        t.add_entry(TableEntry {
            keys: vec![KeyPart::Exact(9), KeyPart::Ternary(TernaryKey::exact(1, 8))],
            priority: 2,
            action_idx: idx,
            action_data: vec![-5],
        });
        prog.tables.push(t);
        prog
    }

    #[test]
    fn switch_program_round_trips() {
        let prog = sample_program();
        let bytes = serde::to_bytes(&prog);
        let back: SwitchProgram = serde::from_bytes(&bytes).expect("program decodes");
        assert_eq!(back.name, prog.name);
        assert_eq!(back.layout, prog.layout);
        assert_eq!(back.tables.len(), 1);
        assert_eq!(back.tables[0].entries, prog.tables[0].entries);
        assert_eq!(back.tables[0].actions, prog.tables[0].actions);
        assert_eq!(back.registers[0].total_bits(), prog.registers[0].total_bits());
        assert_eq!(back.extra_stages, 1);
        assert_eq!(back.stateful_bits_per_flow, 44);
        assert_eq!(back.keep_alive, prog.keep_alive);
    }

    #[test]
    fn truncated_program_is_a_typed_error() {
        let bytes = serde::to_bytes(&sample_program());
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                serde::from_bytes::<SwitchProgram>(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, AluOp, Operand};
    use crate::mat::{KeyPart, MatchKind, TableEntry};

    /// A two-table program: t0 maps x -> tmp (exact), t1 adds tmp to acc.
    fn chain_program() -> (SwitchProgram, FieldId, FieldId) {
        let mut layout = PhvLayout::new();
        let x = layout.add_field("x", 8);
        let tmp = layout.add_signed_field("tmp", 16);
        let acc = layout.add_signed_field("acc", 16);

        let mut t0 = Table::new("map_x", vec![(x, MatchKind::Exact)]);
        let a0 =
            t0.add_action(Action::new("set").with(AluOp::Set { dst: tmp, a: Operand::Param(0) }));
        t0.param_widths = vec![16];
        for v in 0..10u64 {
            t0.add_entry(TableEntry {
                keys: vec![KeyPart::Exact(v)],
                priority: 0,
                action_idx: a0,
                action_data: vec![(v * v) as i64],
            });
        }

        let mut t1 = Table::new("accumulate", vec![]);
        let a1 = t1.add_action(Action::new("add").with(AluOp::Add {
            dst: acc,
            a: Operand::Field(acc),
            b: Operand::Field(tmp),
        }));
        t1.default_action = Some((a1, vec![]));

        let mut p = SwitchProgram::new("chain", layout);
        p.tables.push(t0);
        p.tables.push(t1);
        (p, x, acc)
    }

    #[test]
    fn deploy_and_process() {
        let (p, x, acc) = chain_program();
        let loaded = p.deploy(&SwitchConfig::tofino2()).expect("deploys");
        let phv = loaded.process(&[(x, 7)]);
        assert_eq!(phv.get(acc), 49);
    }

    #[test]
    fn dependent_tables_get_distinct_stages() {
        let (p, _, _) = chain_program();
        let loaded = p.deploy(&SwitchConfig::tofino2()).unwrap();
        let stages = loaded.stage_assignment();
        // t1 reads tmp written by t0 -> strictly later stage.
        assert!(stages[1] > stages[0], "{stages:?}");
    }

    #[test]
    fn phv_overflow_rejected() {
        let mut layout = PhvLayout::new();
        for i in 0..100 {
            layout.add_field(&format!("f{i}"), 64);
        }
        let p = SwitchProgram::new("fat", layout);
        let err = p.deploy(&SwitchConfig::tofino2()).unwrap_err();
        assert!(matches!(err, DeployError::PhvOverflow { .. }));
    }

    #[test]
    fn bad_register_width_rejected() {
        let layout = PhvLayout::new();
        let mut p = SwitchProgram::new("regs", layout);
        p.registers.push(RegisterArray::new("r4", 4, 16));
        let err = p.deploy(&SwitchConfig::tofino2()).unwrap_err();
        assert_eq!(err, DeployError::BadRegisterWidth { register: "r4".to_string(), width: 4 });
    }

    #[test]
    fn register_budget_enforced() {
        let layout = PhvLayout::new();
        let mut p = SwitchProgram::new("regs", layout);
        p.registers.push(RegisterArray::new("big", 32, 10_000_000));
        let err = p.deploy(&SwitchConfig::tiny_test()).unwrap_err();
        assert!(matches!(err, DeployError::RegisterOverflow { .. }));
    }

    #[test]
    fn bus_overflow_rejected() {
        let mut layout = PhvLayout::new();
        let x = layout.add_field("x", 8);
        let dsts: Vec<FieldId> = (0..40).map(|i| layout.add_field(&format!("d{i}"), 8)).collect();
        let mut t = Table::new("wide", vec![(x, MatchKind::Exact)]);
        let mut act = Action::new("fanout");
        for (i, d) in dsts.iter().enumerate() {
            act.ops.push(AluOp::Set { dst: *d, a: Operand::Param(i) });
        }
        let ai = t.add_action(act);
        t.param_widths = vec![8; 40]; // 320 bits > tiny_test's 256-bit bus
        t.add_entry(TableEntry {
            keys: vec![KeyPart::Exact(0)],
            priority: 0,
            action_idx: ai,
            action_data: vec![0; 40],
        });
        let mut p = SwitchProgram::new("wide", layout);
        p.tables.push(t);
        let err = p.deploy(&SwitchConfig::tiny_test()).unwrap_err();
        assert!(matches!(err, DeployError::BusOverflow { .. }), "{err:?}");
    }

    #[test]
    fn extra_stages_count_against_pipeline() {
        let (mut p, _, _) = chain_program();
        p.extra_stages = 19; // chain already needs 2 -> 21 > 20
        let err = p.deploy(&SwitchConfig::tofino2()).unwrap_err();
        assert!(matches!(err, DeployError::OutOfStages { .. }));
    }

    #[test]
    fn resource_report_sums_tables() {
        let (p, _, _) = chain_program();
        let loaded = p.deploy(&SwitchConfig::tofino2()).unwrap();
        let r = loaded.resource_report();
        assert_eq!(r.entries, 10);
        assert!(r.sram_frac > 0.0 && r.sram_frac < 1.0);
        assert_eq!(r.tcam_bits, 0);
        assert!(r.stages_used >= 2);
    }

    #[test]
    fn large_table_spills_across_stages() {
        // One table bigger than a tiny stage's SRAM must span stages.
        let mut layout = PhvLayout::new();
        let x = layout.add_field("x", 16);
        let out = layout.add_field("out", 16);
        let mut t = Table::new("big", vec![(x, MatchKind::Exact)]);
        let a =
            t.add_action(Action::new("set").with(AluOp::Set { dst: out, a: Operand::Param(0) }));
        t.param_widths = vec![16];
        // 3000 entries * (16 + 8 + 16) bits = 120_000 bits > 64k per stage.
        for v in 0..3000u64 {
            t.add_entry(TableEntry {
                keys: vec![KeyPart::Exact(v)],
                priority: 0,
                action_idx: a,
                action_data: vec![v as i64],
            });
        }
        let mut p = SwitchProgram::new("big", layout);
        p.tables.push(t);
        let loaded = p.deploy(&SwitchConfig::tiny_test()).expect("spills but fits");
        assert!(loaded.stage_assignment()[0] >= 1, "should occupy later stage");
    }

    #[test]
    fn process_mut_matches_locked_process() {
        // A stateful program: counter register incremented per packet.
        let mut layout = PhvLayout::new();
        let x = layout.add_field("x", 8);
        let old = layout.add_field("old", 16);
        let mut t = Table::new("count", vec![]);
        let a = t.add_action(Action::new("incr").with(AluOp::RegIncrSat {
            dst: old,
            reg: crate::action::RegId(0),
            index: Operand::Field(x),
            by: 1,
            max: 1000,
        }));
        t.default_action = Some((a, vec![]));
        let mut p = SwitchProgram::new("stateful", layout);
        p.registers.push(RegisterArray::new("cnt", 16, 16));
        p.tables.push(t);

        let shared = p.clone().deploy(&SwitchConfig::tofino2()).unwrap();
        let mut owned = p.deploy(&SwitchConfig::tofino2()).unwrap();
        for i in 0..20 {
            let a = shared.process(&[(x, i % 4)]);
            let b = owned.process_mut(&[(x, i % 4)]);
            assert_eq!(a.get(old), b.get(old), "packet {i}");
        }
        assert_eq!(shared.lookup_count(), owned.lookup_count());
    }

    #[test]
    fn state_reset_clears_registers_and_counters() {
        let (p, x, _) = chain_program();
        let mut loaded = p.deploy(&SwitchConfig::tofino2()).unwrap();
        let _ = loaded.process(&[(x, 1)]);
        assert!(loaded.lookup_count() > 0);
        loaded.reset_state();
        assert_eq!(loaded.lookup_count(), 0);
    }
}

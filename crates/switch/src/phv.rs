//! Packet Header Vector: the per-packet field container flowing through the
//! pipeline.
//!
//! PISA parses packet headers into a fixed-capacity vector of typed fields
//! (4096 bits on Tofino 2). Programs declare a [`PhvLayout`] of named fields
//! with explicit bit widths; the simulator enforces the total-capacity limit
//! at deploy time and value/width invariants at run time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a field within a [`PhvLayout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FieldId(pub usize);

/// Declaration of one PHV field.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Diagnostic name (e.g. "pkt_len", "seg0_fuzzy_idx").
    pub name: String,
    /// Width in bits, 1..=64.
    pub bits: u8,
    /// Whether the field is interpreted as signed two's complement by
    /// arithmetic actions.
    pub signed: bool,
}

/// The set of fields a program carries per packet.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhvLayout {
    fields: Vec<FieldDef>,
}

impl PhvLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        PhvLayout::default()
    }

    /// Declares a new unsigned field, returning its id.
    pub fn add_field(&mut self, name: &str, bits: u8) -> FieldId {
        self.add(name, bits, false)
    }

    /// Declares a new signed field, returning its id.
    pub fn add_signed_field(&mut self, name: &str, bits: u8) -> FieldId {
        self.add(name, bits, true)
    }

    fn add(&mut self, name: &str, bits: u8, signed: bool) -> FieldId {
        assert!((1..=64).contains(&bits), "field width must be 1..=64, got {bits}");
        assert!(!self.fields.iter().any(|f| f.name == name), "duplicate PHV field name: {name}");
        self.fields.push(FieldDef { name: name.to_string(), bits, signed });
        FieldId(self.fields.len() - 1)
    }

    /// Number of declared fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when no fields are declared.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Total bits consumed by the layout.
    pub fn total_bits(&self) -> u64 {
        self.fields.iter().map(|f| f.bits as u64).sum()
    }

    /// The definition of a field.
    pub fn def(&self, id: FieldId) -> &FieldDef {
        &self.fields[id.0]
    }

    /// Looks a field up by name.
    pub fn find(&self, name: &str) -> Option<FieldId> {
        self.fields.iter().position(|f| f.name == name).map(FieldId)
    }

    /// Iterates `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &FieldDef)> {
        self.fields.iter().enumerate().map(|(i, d)| (FieldId(i), d))
    }

    /// Creates a zeroed PHV instance for this layout.
    pub fn instantiate(&self) -> Phv {
        Phv { values: vec![0; self.fields.len()], layout: self.clone() }
    }
}

/// A live per-packet header vector holding one value per declared field.
///
/// Values are stored as `i64` and masked to the field width on every write:
/// unsigned fields wrap modulo `2^bits`, signed fields wrap into
/// `[-2^(bits-1), 2^(bits-1))` — matching dataplane ALU semantics where
/// addition simply truncates.
#[derive(Clone, PartialEq)]
pub struct Phv {
    values: Vec<i64>,
    layout: PhvLayout,
}

impl fmt::Debug for Phv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Phv{{")?;
        for (id, def) in self.layout.iter() {
            write!(f, " {}={}", def.name, self.values[id.0])?;
        }
        write!(f, " }}")
    }
}

impl Phv {
    /// Reads a field value.
    pub fn get(&self, id: FieldId) -> i64 {
        self.values[id.0]
    }

    /// Writes a field value, truncating to the declared width.
    pub fn set(&mut self, id: FieldId, value: i64) {
        let def = self.layout.def(id);
        self.values[id.0] = truncate(value, def.bits, def.signed);
    }

    /// The layout this PHV conforms to.
    pub fn layout(&self) -> &PhvLayout {
        &self.layout
    }

    /// Reads a field by name (test/debug convenience; panics when missing).
    pub fn get_named(&self, name: &str) -> i64 {
        let id = self.layout.find(name).unwrap_or_else(|| panic!("no PHV field named {name}"));
        self.get(id)
    }
}

/// Truncates `value` to `bits`, unsigned-wrapping or sign-extending.
pub fn truncate(value: i64, bits: u8, signed: bool) -> i64 {
    if bits >= 64 {
        return value;
    }
    let mask = (1i64 << bits) - 1;
    let raw = value & mask;
    if signed && (raw >> (bits - 1)) & 1 == 1 {
        raw - (1i64 << bits)
    } else {
        raw
    }
}

// --- serde (control-daemon artifact format) ----------------------------
//
// The derives above are the no-op compat stubs; the real impls are spelled
// out here (the layout's field list is private to this module).

impl serde::Serialize for FieldId {
    fn serialize(&self, w: &mut serde::Writer) {
        self.0.serialize(w);
    }
}

impl<'de> serde::Deserialize<'de> for FieldId {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        Ok(FieldId(serde::Deserialize::deserialize(r)?))
    }
}

serde::impl_serde_struct!(FieldDef { name, bits, signed });
serde::impl_serde_struct!(PhvLayout { fields });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_tracks_bits() {
        let mut l = PhvLayout::new();
        let a = l.add_field("a", 8);
        let b = l.add_field("b", 16);
        assert_eq!(l.total_bits(), 24);
        assert_eq!(l.def(a).bits, 8);
        assert_eq!(l.find("b"), Some(b));
        assert_eq!(l.find("c"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let mut l = PhvLayout::new();
        l.add_field("x", 8);
        l.add_field("x", 8);
    }

    #[test]
    fn unsigned_truncation_wraps() {
        assert_eq!(truncate(256, 8, false), 0);
        assert_eq!(truncate(257, 8, false), 1);
        assert_eq!(truncate(-1, 8, false), 255);
    }

    #[test]
    fn signed_truncation_sign_extends() {
        assert_eq!(truncate(127, 8, true), 127);
        assert_eq!(truncate(128, 8, true), -128);
        assert_eq!(truncate(-1, 8, true), -1);
        assert_eq!(truncate(255, 8, true), -1);
    }

    #[test]
    fn phv_set_get_masks() {
        let mut l = PhvLayout::new();
        let a = l.add_field("a", 8);
        let s = l.add_signed_field("s", 8);
        let mut phv = l.instantiate();
        phv.set(a, 300);
        assert_eq!(phv.get(a), 44); // 300 mod 256
        phv.set(s, 200);
        assert_eq!(phv.get(s), -56); // wraps into signed range
    }

    #[test]
    fn get_named_reads() {
        let mut l = PhvLayout::new();
        let a = l.add_field("alpha", 16);
        let mut phv = l.instantiate();
        phv.set(a, 1234);
        assert_eq!(phv.get_named("alpha"), 1234);
    }

    #[test]
    fn full_width_fields_pass_through() {
        assert_eq!(truncate(i64::MIN, 64, true), i64::MIN);
        assert_eq!(truncate(i64::MAX, 64, false), i64::MAX);
    }
}

//! Stateful register arrays — the per-flow memory of the dataplane.
//!
//! Registers are the scarce resource behind the paper's Figure 7: every bit
//! of per-flow state multiplies by the number of concurrent flows. Widths
//! are restricted to what PISA hardware offers (8/16/32 bits; no 4-bit
//! registers, §7.3 footnote 2).

use crate::action::RegId;
use crate::phv::truncate;
use serde::{Deserialize, Serialize};

/// Declaration and storage of one register array.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegisterArray {
    /// Diagnostic name.
    pub name: String,
    /// Element width in bits (must be 8, 16, or 32 on the Tofino model).
    pub width_bits: u8,
    /// Number of elements.
    pub size: usize,
    values: Vec<i64>,
}

impl RegisterArray {
    /// Creates a zeroed register array.
    pub fn new(name: &str, width_bits: u8, size: usize) -> Self {
        assert!(size > 0, "register array must have at least one element");
        RegisterArray { name: name.to_string(), width_bits, size, values: vec![0; size] }
    }

    /// Total SRAM bits consumed by this array.
    pub fn total_bits(&self) -> u64 {
        self.width_bits as u64 * self.size as u64
    }

    /// Reads element `idx` (panics when out of bounds — dataplane index
    /// computations are masked to the array size by the compiler).
    pub fn read(&self, idx: usize) -> i64 {
        self.values[idx % self.size]
    }

    /// Writes element `idx`, truncating to the register width.
    pub fn write(&mut self, idx: usize, value: i64) {
        let i = idx % self.size;
        self.values[i] = truncate(value, self.width_bits, false);
    }

    /// Resets all elements to zero.
    pub fn clear(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0);
    }
}

/// The set of register arrays owned by one loaded program.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RegFile {
    arrays: Vec<RegisterArray>,
}

impl RegFile {
    /// Wraps a list of arrays; `RegId(i)` addresses `arrays[i]`.
    pub fn new(arrays: Vec<RegisterArray>) -> Self {
        RegFile { arrays }
    }

    /// Number of arrays.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// True when no arrays exist.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }

    /// Reads `reg[idx]`.
    pub fn read(&self, reg: RegId, idx: usize) -> i64 {
        self.arrays[reg.0].read(idx)
    }

    /// Writes `reg[idx] = value`.
    pub fn write(&mut self, reg: RegId, idx: usize, value: i64) {
        self.arrays[reg.0].write(idx, value);
    }

    /// The declaration of an array.
    pub fn array(&self, reg: RegId) -> &RegisterArray {
        &self.arrays[reg.0]
    }

    /// Total SRAM bits across all arrays.
    pub fn total_bits(&self) -> u64 {
        self.arrays.iter().map(|a| a.total_bits()).sum()
    }

    /// Zeroes every array (start of a fresh trace replay).
    pub fn clear(&mut self) {
        self.arrays.iter_mut().for_each(|a| a.clear());
    }

    /// Iterates the arrays.
    pub fn iter(&self) -> impl Iterator<Item = &RegisterArray> {
        self.arrays.iter()
    }
}

// --- serde (control-daemon artifact format) ----------------------------
//
// `values` is private, so the impl lives here; the decoder re-validates
// the size/values invariant the constructor enforces.

impl serde::Serialize for RegisterArray {
    fn serialize(&self, w: &mut serde::Writer) {
        self.name.serialize(w);
        self.width_bits.serialize(w);
        self.size.serialize(w);
        self.values.serialize(w);
    }
}

impl<'de> serde::Deserialize<'de> for RegisterArray {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        let name: String = serde::Deserialize::deserialize(r)?;
        let width_bits: u8 = serde::Deserialize::deserialize(r)?;
        let size: usize = serde::Deserialize::deserialize(r)?;
        let values: Vec<i64> = serde::Deserialize::deserialize(r)?;
        if size == 0 || values.len() != size {
            return Err(serde::DecodeError::BadLength {
                what: "register values",
                len: values.len(),
                remaining: r.remaining(),
            });
        }
        Ok(RegisterArray { name, width_bits, size, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut r = RegisterArray::new("r", 16, 8);
        r.write(3, 1234);
        assert_eq!(r.read(3), 1234);
        assert_eq!(r.read(0), 0);
    }

    #[test]
    fn width_truncation() {
        let mut r = RegisterArray::new("r", 8, 2);
        r.write(0, 300);
        assert_eq!(r.read(0), 44);
    }

    #[test]
    fn index_wraps_modulo_size() {
        let mut r = RegisterArray::new("r", 8, 4);
        r.write(6, 9);
        assert_eq!(r.read(2), 9);
    }

    #[test]
    fn total_bits() {
        let r = RegisterArray::new("r", 32, 1024);
        assert_eq!(r.total_bits(), 32 * 1024);
        let f = RegFile::new(vec![RegisterArray::new("a", 8, 10), RegisterArray::new("b", 16, 10)]);
        assert_eq!(f.total_bits(), 80 + 160);
    }

    #[test]
    fn clear_resets() {
        let mut f = RegFile::new(vec![RegisterArray::new("a", 8, 4)]);
        f.write(RegId(0), 1, 7);
        f.clear();
        assert_eq!(f.read(RegId(0), 1), 0);
    }
}

//! Sequential model container and its serializable description.

use crate::layers::{build_layer, Layer, LayerSpec, Param};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// An ordered chain of layers.
///
/// All six paper models (§6.3) are expressible as a `Sequential` whose
/// elements may include [`crate::layers::Parallel`] blocks for branching.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

/// Serializable model description: an ordered list of [`LayerSpec`]s.
///
/// This is the artifact handed to the Pegasus compiler and to disk.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable model name (e.g. "MLP-B").
    pub name: String,
    /// Ordered layer descriptions, including weights.
    pub layers: Vec<LayerSpec>,
}

impl ModelSpec {
    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Model size in kilobits assuming 32-bit weights — the unit Table 5
    /// reports ("Model Size (Kb)").
    pub fn size_kilobits(&self) -> f64 {
        (self.param_count() * 32) as f64 / 1000.0
    }
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the forward pass.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, train);
        }
        h
    }

    /// Backpropagates from the loss gradient, accumulating parameter grads.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// All trainable parameters, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }

    /// Extracts the serializable description (structure + weights).
    pub fn to_spec(&self, name: &str) -> ModelSpec {
        ModelSpec { name: name.to_string(), layers: self.layers.iter().map(|l| l.spec()).collect() }
    }

    /// Rebuilds a live model from a spec.
    pub fn from_spec(spec: &ModelSpec) -> Self {
        Sequential { layers: spec.layers.iter().map(build_layer).collect() }
    }

    /// Freezes/unfreezes normalization statistics in every layer.
    pub fn set_frozen(&mut self, frozen: bool) {
        for layer in &mut self.layers {
            layer.set_frozen(frozen);
        }
    }

    /// Layer names in order (for debugging and reports).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;
    use crate::layers::{Dense, Relu};

    fn tiny_model(seed: u64) -> Sequential {
        let mut r = rng(seed);
        Sequential::new()
            .push(Box::new(Dense::new(&mut r, 4, 8)))
            .push(Box::new(Relu::new()))
            .push(Box::new(Dense::new(&mut r, 8, 3)))
    }

    #[test]
    fn forward_produces_logits() {
        let mut m = tiny_model(1);
        let x = Tensor::ones(&[2, 4]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[2, 3]);
    }

    #[test]
    fn spec_round_trip_preserves_outputs() {
        let mut m = tiny_model(2);
        let x = Tensor::ones(&[1, 4]);
        let y1 = m.forward(&x, false);
        let spec = m.to_spec("tiny");
        let mut m2 = Sequential::from_spec(&spec);
        let y2 = m2.forward(&x, false);
        assert_eq!(y1.data(), y2.data());
    }

    #[test]
    fn param_count_matches_structure() {
        let mut m = tiny_model(3);
        // 4*8 + 8 + 8*3 + 3 = 67
        assert_eq!(m.param_count(), 67);
        assert_eq!(m.to_spec("tiny").param_count(), 67);
    }

    #[test]
    fn zero_grad_clears() {
        let mut m = tiny_model(4);
        let x = Tensor::ones(&[2, 4]);
        let y = m.forward(&x, true);
        m.backward(&Tensor::ones(y.shape()));
        assert!(m.params_mut().iter().any(|p| p.grad.norm_sq() > 0.0));
        m.zero_grad();
        assert!(m.params_mut().iter().all(|p| p.grad.norm_sq() == 0.0));
    }

    #[test]
    fn size_kilobits_uses_32bit_weights() {
        let m = tiny_model(5);
        let spec = m.to_spec("tiny");
        assert!((spec.size_kilobits() - 67.0 * 32.0 / 1000.0).abs() < 1e-9);
    }
}

//! Training loops for classifiers and autoencoders.

use crate::data::Dataset;
use crate::loss::{mse, softmax_cross_entropy};
use crate::metrics::{pr_rc_f1, PrRcF1};
use crate::model::Sequential;
use crate::optim::Optimizer;
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Hyper-parameters for a training run.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Print a line per epoch when true.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 20, batch_size: 64, verbose: false }
    }
}

/// Per-epoch training record.
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over batches.
    pub train_loss: f32,
    /// Validation macro-F1 (when a validation set was supplied).
    pub val_f1: Option<f64>,
}

/// Trains a classifier with softmax cross-entropy.
///
/// `reshape` maps a `[batch, flat]` feature block to whatever input shape the
/// model expects (e.g. `[batch, time, feat]` for RNNs) — identity for MLPs.
pub fn train_classifier(
    model: &mut Sequential,
    train: &Dataset,
    val: Option<&Dataset>,
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
    rng: &mut StdRng,
    reshape: &dyn Fn(&Tensor) -> Tensor,
) -> Vec<EpochStats> {
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let mut loss_sum = 0.0;
        let mut batches = 0;
        for (xb, yb) in train.batches(cfg.batch_size, rng) {
            let xin = reshape(&xb);
            let logits = model.forward(&xin, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &yb);
            model.backward(&grad);
            let mut params = model.params_mut();
            opt.step(&mut params);
            model.zero_grad();
            loss_sum += loss;
            batches += 1;
        }
        let val_f1 = val.map(|v| evaluate_classifier(model, v, reshape).f1);
        let stats = EpochStats { epoch, train_loss: loss_sum / batches.max(1) as f32, val_f1 };
        if cfg.verbose {
            match stats.val_f1 {
                Some(f1) => {
                    eprintln!("epoch {:>3}: loss {:.4}  val F1 {:.4}", epoch, stats.train_loss, f1)
                }
                None => eprintln!("epoch {:>3}: loss {:.4}", epoch, stats.train_loss),
            }
        }
        history.push(stats);
    }
    history
}

/// Evaluates a classifier, returning macro PR/RC/F1.
pub fn evaluate_classifier(
    model: &mut Sequential,
    data: &Dataset,
    reshape: &dyn Fn(&Tensor) -> Tensor,
) -> PrRcF1 {
    let preds = predict_classes(model, &data.x, reshape);
    pr_rc_f1(&data.y, &preds, data.classes())
}

/// Runs inference and returns the argmax class per row.
pub fn predict_classes(
    model: &mut Sequential,
    x: &Tensor,
    reshape: &dyn Fn(&Tensor) -> Tensor,
) -> Vec<usize> {
    // Evaluate in chunks to bound peak memory on big test sets.
    let rows = x.shape()[0];
    let chunk = 512;
    let mut preds = Vec::with_capacity(rows);
    let mut start = 0;
    while start < rows {
        let end = (start + chunk).min(rows);
        let idx: Vec<usize> = (start..end).collect();
        let xb = x.select_rows(&idx);
        let logits = model.forward(&reshape(&xb), false);
        preds.extend(logits.argmax_rows());
        start = end;
    }
    preds
}

/// Trains an autoencoder to reconstruct its input with MSE.
pub fn train_autoencoder(
    model: &mut Sequential,
    train_x: &Tensor,
    target: &Tensor,
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
    rng: &mut StdRng,
    reshape: &dyn Fn(&Tensor) -> Tensor,
) -> Vec<f32> {
    assert_eq!(train_x.shape()[0], target.shape()[0]);
    let n = train_x.shape()[0];
    let mut losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut idx: Vec<usize> = (0..n).collect();
        use rand::seq::SliceRandom;
        idx.shuffle(rng);
        let mut loss_sum = 0.0;
        let mut batches = 0;
        for chunk in idx.chunks(cfg.batch_size) {
            let xb = train_x.select_rows(chunk);
            let tb = target.select_rows(chunk);
            let out = model.forward(&reshape(&xb), true);
            let (loss, grad) = mse(&out, &tb);
            model.backward(&grad);
            let mut params = model.params_mut();
            opt.step(&mut params);
            model.zero_grad();
            loss_sum += loss;
            batches += 1;
        }
        losses.push(loss_sum / batches.max(1) as f32);
    }
    losses
}

/// The identity reshape for flat-feature models.
pub fn flat(x: &Tensor) -> Tensor {
    x.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;
    use crate::layers::{Dense, Relu};
    use crate::optim::Adam;

    /// Two linearly separable blobs.
    fn blobs(seed: u64, n: usize) -> Dataset {
        let mut r = rng(seed);
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -2.0 } else { 2.0 };
            x.push(cx + crate::init::normal(&mut r, &[1], 0.5).data()[0]);
            x.push(cx + crate::init::normal(&mut r, &[1], 0.5).data()[0]);
            y.push(label);
        }
        Dataset::new(Tensor::from_vec(x, &[n, 2]), y)
    }

    #[test]
    fn classifier_learns_separable_blobs() {
        let train = blobs(1, 200);
        let test = blobs(2, 100);
        let mut r = rng(3);
        let mut model = Sequential::new()
            .push(Box::new(Dense::new(&mut r, 2, 8)))
            .push(Box::new(Relu::new()))
            .push(Box::new(Dense::new(&mut r, 8, 2)));
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig { epochs: 30, batch_size: 32, verbose: false };
        let history =
            train_classifier(&mut model, &train, Some(&test), &mut opt, &cfg, &mut r, &flat);
        let final_f1 = history.last().unwrap().val_f1.unwrap();
        assert!(final_f1 > 0.95, "final F1 {final_f1}");
        // Loss should fall substantially.
        assert!(history.last().unwrap().train_loss < history[0].train_loss * 0.5);
    }

    #[test]
    fn autoencoder_reduces_reconstruction_error() {
        let mut r = rng(4);
        let x = crate::init::normal(&mut r, &[128, 4], 1.0);
        let mut model = Sequential::new()
            .push(Box::new(Dense::new(&mut r, 4, 2)))
            .push(Box::new(Relu::new()))
            .push(Box::new(Dense::new(&mut r, 2, 4)));
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig { epochs: 50, batch_size: 32, verbose: false };
        let losses = train_autoencoder(&mut model, &x, &x, &mut opt, &cfg, &mut r, &flat);
        assert!(losses.last().unwrap() < &(losses[0] * 0.8), "{losses:?}");
    }

    #[test]
    fn predict_classes_chunked_matches_single() {
        let mut r = rng(5);
        let mut model = Sequential::new().push(Box::new(Dense::new(&mut r, 2, 3)));
        let x = crate::init::normal(&mut r, &[1030, 2], 1.0); // crosses chunk border
        let preds = predict_classes(&mut model, &x, &flat);
        let logits = model.forward(&x, false);
        assert_eq!(preds, logits.argmax_rows());
    }
}

//! Gradient-descent optimizers.

use crate::layers::Param;
use crate::tensor::Tensor;

/// An optimizer steps parameters using their accumulated gradients.
///
/// Optimizers keep per-parameter state (momentum buffers, Adam moments) keyed
/// by position in the parameter list, so the same list order must be used on
/// every call — which `Sequential::params_mut` guarantees.
pub trait Optimizer {
    /// Applies one update step and leaves gradients untouched
    /// (call `zero_grad` separately).
    fn step(&mut self, params: &mut [&mut Param]);
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.value.shape())).collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "parameter list changed size");
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            if self.momentum > 0.0 {
                // v = mu*v + g ; w -= lr*v
                for (vi, &gi) in v.data_mut().iter_mut().zip(p.grad.data().iter()) {
                    *vi = self.momentum * *vi + gi;
                }
                p.value.sub_scaled_assign(v, self.lr);
            } else {
                let grad = p.grad.clone();
                p.value.sub_scaled_assign(&grad, self.lr);
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| Tensor::zeros(p.value.shape())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.value.shape())).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed size");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(self.m.iter_mut()).zip(self.v.iter_mut()) {
            for i in 0..p.value.len() {
                let g = p.grad.data()[i];
                let mi = &mut m.data_mut()[i];
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                let vi = &mut v.data_mut()[i];
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = m.data()[i] / bc1;
                let v_hat = v.data()[i] / bc2;
                p.value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_param(x0: f32) -> Param {
        Param::new(Tensor::from_slice(&[x0]))
    }

    /// Minimizes f(x) = x^2 with the given optimizer; returns the final x.
    fn run<O: Optimizer>(opt: &mut O, steps: usize, x0: f32) -> f32 {
        let mut p = quad_param(x0);
        for _ in 0..steps {
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * x;
            let mut ps = [&mut p];
            opt.step(&mut ps);
            p.zero_grad();
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run(&mut Sgd::new(0.1, 0.0), 100, 5.0);
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = run(&mut Sgd::new(0.05, 0.9), 200, 5.0);
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = run(&mut Adam::new(0.2), 300, 5.0);
        assert!(x.abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction the very first Adam step is ~lr in magnitude.
        let mut opt = Adam::new(0.1);
        let mut p = quad_param(1.0);
        p.grad.data_mut()[0] = 2.0;
        let mut ps = [&mut p];
        opt.step(&mut ps);
        assert!((p.value.data()[0] - 0.9).abs() < 1e-4, "{}", p.value.data()[0]);
    }
}

//! Classification and detection metrics.
//!
//! The paper evaluates with packet-level *macro-accuracy* — the average
//! F1-score across classes (§7.1) — plus overall precision/recall (Table 5)
//! and AUC/ROC for the unsupervised detector (Figure 8). All of those are
//! implemented here, from the confusion matrix up.

/// Confusion matrix over `k` classes; `m[t][p]` counts samples of true class
/// `t` predicted as class `p`.
#[derive(Clone, Debug)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from parallel true/predicted label slices.
    pub fn from_labels(truth: &[usize], pred: &[usize], classes: usize) -> Self {
        assert_eq!(truth.len(), pred.len());
        let mut counts = vec![vec![0u64; classes]; classes];
        for (&t, &p) in truth.iter().zip(pred.iter()) {
            assert!(t < classes && p < classes, "label out of range");
            counts[t][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.counts.len()
    }

    /// Raw count of true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> u64 {
        self.counts[t][p]
    }

    /// Per-class precision (0 when the class is never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        let tp = self.counts[c][c] as f64;
        let predicted: u64 = (0..self.classes()).map(|t| self.counts[t][c]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp / predicted as f64
        }
    }

    /// Per-class recall (0 when the class has no samples).
    pub fn recall(&self, c: usize) -> f64 {
        let tp = self.counts[c][c] as f64;
        let actual: u64 = self.counts[c].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp / actual as f64
        }
    }

    /// Per-class F1.
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged precision.
    pub fn macro_precision(&self) -> f64 {
        (0..self.classes()).map(|c| self.precision(c)).sum::<f64>() / self.classes() as f64
    }

    /// Macro-averaged recall.
    pub fn macro_recall(&self) -> f64 {
        (0..self.classes()).map(|c| self.recall(c)).sum::<f64>() / self.classes() as f64
    }

    /// Macro-averaged F1 — the paper's "macro-accuracy" (§7.1).
    pub fn macro_f1(&self) -> f64 {
        (0..self.classes()).map(|c| self.f1(c)).sum::<f64>() / self.classes() as f64
    }

    /// Plain accuracy (trace over total).
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.classes()).map(|c| self.counts[c][c]).sum();
        let total: u64 = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

/// The PR / RC / F1 triple that each cell block of Table 5 reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrRcF1 {
    /// Macro precision.
    pub precision: f64,
    /// Macro recall.
    pub recall: f64,
    /// Macro F1.
    pub f1: f64,
}

/// Computes the Table 5 metric triple from labels.
pub fn pr_rc_f1(truth: &[usize], pred: &[usize], classes: usize) -> PrRcF1 {
    let cm = ConfusionMatrix::from_labels(truth, pred, classes);
    PrRcF1 { precision: cm.macro_precision(), recall: cm.macro_recall(), f1: cm.macro_f1() }
}

/// One point on a ROC curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RocPoint {
    /// False-positive rate.
    pub fpr: f64,
    /// True-positive rate.
    pub tpr: f64,
    /// The score threshold producing this point.
    pub threshold: f64,
}

/// Computes the full ROC curve for anomaly `scores` (higher = more anomalous)
/// against boolean ground truth (`true` = positive/attack).
pub fn roc_curve(scores: &[f64], is_positive: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), is_positive.len());
    let pos = is_positive.iter().filter(|&&p| p).count() as f64;
    let neg = is_positive.len() as f64 - pos;
    assert!(pos > 0.0 && neg > 0.0, "ROC requires both classes present");

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));

    let mut points = vec![RocPoint { fpr: 0.0, tpr: 0.0, threshold: f64::INFINITY }];
    let (mut tp, mut fp) = (0.0f64, 0.0f64);
    let mut i = 0;
    while i < order.len() {
        // Process ties as a block so the curve is threshold-consistent.
        let thresh = scores[order[i]];
        while i < order.len() && scores[order[i]] == thresh {
            if is_positive[order[i]] {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        points.push(RocPoint { fpr: fp / neg, tpr: tp / pos, threshold: thresh });
    }
    points
}

/// Area under the ROC curve by trapezoidal integration.
pub fn auc(scores: &[f64], is_positive: &[bool]) -> f64 {
    let curve = roc_curve(scores, is_positive);
    let mut area = 0.0;
    for w in curve.windows(2) {
        area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let truth = [0, 1, 2, 0, 1, 2];
        let m = pr_rc_f1(&truth, &truth, 3);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn all_wrong_predictions() {
        let truth = [0, 0, 1, 1];
        let pred = [1, 1, 0, 0];
        let m = pr_rc_f1(&truth, &pred, 2);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn macro_f1_weights_classes_equally() {
        // Class 1 is rare (1 sample) and always wrong; class 0 perfect.
        let truth = [0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let pred = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let cm = ConfusionMatrix::from_labels(&truth, &pred, 2);
        assert!(cm.accuracy() > 0.85);
        assert!(cm.macro_f1() < 0.55, "macro F1 {}", cm.macro_f1());
    }

    #[test]
    fn confusion_counts() {
        let cm = ConfusionMatrix::from_labels(&[0, 1, 1], &[1, 1, 0], 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(0, 0), 0);
    }

    #[test]
    fn auc_perfect_separation() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_random_is_half() {
        // Interleaved scores: exactly chance-level ranking.
        let scores = [4.0, 3.0, 2.0, 1.0];
        let labels = [true, false, true, false];
        let a = auc(&scores, &labels);
        assert!((a - 0.75).abs() < 1e-9, "auc {a}"); // 3 of 4 pairs ordered
    }

    #[test]
    fn auc_inverted_is_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(auc(&scores, &labels).abs() < 1e-9);
    }

    #[test]
    fn auc_handles_ties() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn roc_curve_endpoints() {
        let scores = [0.9, 0.1];
        let labels = [true, false];
        let curve = roc_curve(&scores, &labels);
        assert_eq!(curve.first().map(|p| (p.fpr, p.tpr)), Some((0.0, 0.0)));
        assert_eq!(curve.last().map(|p| (p.fpr, p.tpr)), Some((1.0, 1.0)));
    }
}

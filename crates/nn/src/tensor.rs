//! Dense row-major `f32` tensors.
//!
//! This is the minimal tensor substrate the Pegasus reproduction needs:
//! 1-D/2-D/3-D shapes, matrix multiplication, element-wise arithmetic,
//! reductions and a handful of shape utilities. Everything is eager,
//! single-threaded and allocation-explicit — the training sets in this
//! reproduction are small (tens of thousands of flows), so clarity wins
//! over SIMD tricks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// The shape is dynamic (a `Vec<usize>`), which keeps the layer code simple
/// at the cost of run-time shape checks. All checks panic on violation:
/// shape errors in this codebase are programming errors, not recoverable
/// conditions.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:?}, ...]", &self.data[..8])
        }
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor { data: vec![0.0; n], shape: shape.to_vec() }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor { data: vec![1.0; n], shape: shape.to_vec() }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor { data: vec![value; n], shape: shape.to_vec() }
    }

    /// Wraps an existing buffer. Panics if `data.len()` does not match `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "buffer length {} does not match shape {:?}", data.len(), shape);
        Tensor { data, shape: shape.to_vec() }
    }

    /// 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { data: data.to_vec(), shape: vec![data.len()] }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows, interpreting the tensor as 2-D (first axis).
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a 2-D tensor, got {:?}", self.shape);
        self.shape[1]
    }

    /// Raw read access to the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Raw mutable access to the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access for a 2-D tensor.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element access for a 2-D tensor.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols + c]
    }

    /// Element access for a 3-D tensor.
    #[inline]
    pub fn at3(&self, a: usize, b: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        self.data[(a * self.shape[1] + b) * self.shape[2] + c]
    }

    /// Mutable element access for a 3-D tensor.
    #[inline]
    pub fn at3_mut(&mut self, a: usize, b: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 3);
        let (s1, s2) = (self.shape[1], self.shape[2]);
        &mut self.data[(a * s1 + b) * s2 + c]
    }

    /// A view of row `r` of a 2-D tensor.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// A mutable view of row `r` of a 2-D tensor.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Returns a reshaped copy sharing no storage. Panics when the element
    /// count differs.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "cannot reshape {:?} to {:?}", self.shape, shape);
        Tensor { data: self.data.clone(), shape: shape.to_vec() }
    }

    /// In-place reshape (no copy). Panics when the element count differs.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "cannot reshape {:?} to {:?}", self.shape, shape);
        self.shape = shape.to_vec();
    }

    /// Matrix multiplication of two 2-D tensors: `(m,k) x (k,n) -> (m,n)`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dims mismatch: {:?} x {:?}", self.shape, rhs.shape);
        let mut out = vec![0.0f32; m * n];
        // i-k-j loop order: streams through rhs rows, friendly to the cache.
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * r;
                }
            }
        }
        Tensor { data: out, shape: vec![m, n] }
    }

    /// Transpose of a 2-D tensor.
    pub fn t(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "t() requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { data: out, shape: vec![n, m] }
    }

    /// Element-wise addition. Shapes must match exactly.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b)
    }

    /// Element-wise subtraction. Shapes must match exactly.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product. Shapes must match exactly.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Applies `f` in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two equally shaped tensors element-wise.
    pub fn zip_map(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "shape mismatch: {:?} vs {:?}", self.shape, rhs.shape);
        Tensor {
            data: self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// `self += rhs` element-wise.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "shape mismatch: {:?} vs {:?}", self.shape, rhs.shape);
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// `self -= rhs * s` element-wise (the SGD update step).
    pub fn sub_scaled_assign(&mut self, rhs: &Tensor, s: f32) {
        assert_eq!(self.shape, rhs.shape, "shape mismatch: {:?} vs {:?}", self.shape, rhs.shape);
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b * s;
        }
    }

    /// Adds a 1-D bias row to every row of a 2-D tensor.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(bias.len(), self.shape[1], "bias length must equal column count");
        let mut out = self.clone();
        let cols = self.shape[1];
        for r in 0..self.shape[0] {
            for c in 0..cols {
                out.data[r * cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sums a 2-D tensor over rows, producing a 1-D tensor of column sums.
    pub fn sum_axis0(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; n];
        for r in 0..m {
            for (c, o) in out.iter_mut().enumerate() {
                *o += self.data[r * n + c];
            }
        }
        Tensor { data: out, shape: vec![n] }
    }

    /// Mean of a 2-D tensor over rows, producing a 1-D tensor.
    pub fn mean_axis0(&self) -> Tensor {
        let m = self.shape[0] as f32;
        self.sum_axis0().scale(1.0 / m)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (NaN-free data assumed). Returns `f32::MIN` when empty.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::MIN, f32::max)
    }

    /// Minimum element (NaN-free data assumed). Returns `f32::MAX` when empty.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::MAX, f32::min)
    }

    /// Index of the maximum element within each row of a 2-D tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2);
        (0..self.shape[0])
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in argmax"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Concatenates 2-D tensors along the column axis (all must share rows).
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let rows = parts[0].shape[0];
        for p in parts {
            assert_eq!(p.shape.len(), 2);
            assert_eq!(p.shape[0], rows, "concat_cols requires equal row counts");
        }
        let total_cols: usize = parts.iter().map(|p| p.shape[1]).sum();
        let mut out = Tensor::zeros(&[rows, total_cols]);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                let pc = p.shape[1];
                out.data[r * total_cols + off..r * total_cols + off + pc].copy_from_slice(p.row(r));
                off += pc;
            }
        }
        out
    }

    /// Splits a 2-D tensor into column blocks of the given widths.
    pub fn split_cols(&self, widths: &[usize]) -> Vec<Tensor> {
        assert_eq!(self.shape.len(), 2);
        let total: usize = widths.iter().sum();
        assert_eq!(total, self.shape[1], "split widths must sum to column count");
        let rows = self.shape[0];
        let mut outs: Vec<Tensor> = widths.iter().map(|&w| Tensor::zeros(&[rows, w])).collect();
        for r in 0..rows {
            let mut off = 0;
            for (o, &w) in outs.iter_mut().zip(widths.iter()) {
                o.row_mut(r).copy_from_slice(&self.row(r)[off..off + w]);
                off += w;
            }
        }
        outs
    }

    /// Selects a subset of rows of a 2-D tensor by index.
    pub fn select_rows(&self, idx: &[usize]) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        let mut out = Tensor::zeros(&[idx.len(), cols]);
        for (r, &i) in idx.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
        out
    }

    /// Squared L2 norm of the whole tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.at2(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        Tensor::from_vec(vec![1.0], &[2, 2]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.t().t(), a);
        assert_eq!(a.t().shape(), &[3, 2]);
        assert_eq!(a.t().at2(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 5.0]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn broadcast_bias() {
        let x = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], &[2, 2]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data(), &[10.0, 20.0, 11.0, 21.0]);
    }

    #[test]
    fn reductions() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(x.sum_axis0().data(), &[4.0, 6.0]);
        assert_eq!(x.mean_axis0().data(), &[2.0, 3.0]);
        assert_eq!(x.sum(), 10.0);
        assert_eq!(x.mean(), 2.5);
        assert_eq!(x.max(), 4.0);
        assert_eq!(x.min(), 1.0);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let x = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2], &[2, 2]);
        assert_eq!(x.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn concat_and_split_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 5.0, 6.0], &[2, 2]);
        let b = Tensor::from_vec(vec![3.0, 7.0], &[2, 1]);
        let cat = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(cat.shape(), &[2, 3]);
        assert_eq!(cat.data(), &[1.0, 2.0, 3.0, 5.0, 6.0, 7.0]);
        let parts = cat.split_cols(&[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn select_rows_gathers() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn at3_indexing() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        *t.at3_mut(1, 2, 3) = 9.0;
        assert_eq!(t.at3(1, 2, 3), 9.0);
        assert_eq!(t.data()[23], 9.0);
    }

    #[test]
    fn clone_is_deep() {
        let a = Tensor::from_vec(vec![1.5, -2.0], &[2, 1]);
        let mut b = a.clone();
        b.data_mut()[0] = 0.0;
        assert_eq!(a.data()[0], 1.5);
    }
}

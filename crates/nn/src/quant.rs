//! Fixed-point quantization.
//!
//! Pegasus stores full-precision weights inside precomputed mapping tables
//! but represents *activations* as fixed-point integers on the wire between
//! tables (§1 design ❸, §4.4). Different tables may use different fixed-point
//! positions ("Adaptive Fixed-Point Quantization"), chosen per tensor from
//! the observed numerical range — exactly what [`FixedPointFormat::calibrate`]
//! does.

use serde::{Deserialize, Serialize};

/// A signed fixed-point format: `total_bits` two's-complement bits with
/// `frac_bits` of them after the binary point (Q notation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedPointFormat {
    /// Total storage width in bits (including sign), 2..=32.
    pub total_bits: u8,
    /// Number of fractional bits; may be negative conceptually but we
    /// restrict to `0..total_bits` which covers the paper's use.
    pub frac_bits: u8,
}

impl FixedPointFormat {
    /// Creates a format, validating the widths.
    pub fn new(total_bits: u8, frac_bits: u8) -> Self {
        assert!((2..=32).contains(&total_bits), "total_bits must be 2..=32");
        assert!(frac_bits < total_bits, "frac_bits must leave room for sign/integer");
        FixedPointFormat { total_bits, frac_bits }
    }

    /// The quantization step (value of one least-significant bit).
    pub fn step(&self) -> f32 {
        (2.0f32).powi(-(self.frac_bits as i32))
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f32 {
        (self.max_raw() as f32) * self.step()
    }

    /// Smallest (most negative) representable value.
    pub fn min_value(&self) -> f32 {
        (self.min_raw() as f32) * self.step()
    }

    fn max_raw(&self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    fn min_raw(&self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Quantizes a float to the raw integer representation, rounding to
    /// nearest and saturating at the format limits.
    pub fn quantize(&self, x: f32) -> i64 {
        let scaled = (x / self.step()).round() as i64;
        scaled.clamp(self.min_raw(), self.max_raw())
    }

    /// Reconstructs the float value of a raw integer.
    pub fn dequantize(&self, raw: i64) -> f32 {
        raw as f32 * self.step()
    }

    /// Quantize-dequantize round trip (the value the dataplane actually sees).
    pub fn round_trip(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }

    /// Picks the format with the given width that covers `[lo, hi]` with the
    /// most fractional precision — post-training static calibration (§4.4).
    pub fn calibrate(lo: f32, hi: f32, total_bits: u8) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        let bound = lo.abs().max(hi.abs()).max(f32::MIN_POSITIVE);
        // Need integer bits so that max_raw*step >= bound.
        let mut frac = total_bits - 1;
        loop {
            let fmt = FixedPointFormat { total_bits, frac_bits: frac };
            if fmt.max_value() >= bound || frac == 0 {
                return fmt;
            }
            frac -= 1;
        }
    }

    /// Worst-case absolute rounding error for in-range values.
    pub fn max_error(&self) -> f32 {
        self.step() / 2.0
    }
}

/// Quantizes a whole slice, returning raw integers.
pub fn quantize_slice(fmt: FixedPointFormat, xs: &[f32]) -> Vec<i64> {
    xs.iter().map(|&x| fmt.quantize(x)).collect()
}

/// Applies the quantize-dequantize round trip to a whole slice.
pub fn round_trip_slice(fmt: FixedPointFormat, xs: &[f32]) -> Vec<f32> {
    xs.iter().map(|&x| fmt.round_trip(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q8_4_basics() {
        let f = FixedPointFormat::new(8, 4);
        assert_eq!(f.step(), 1.0 / 16.0);
        assert_eq!(f.max_value(), 127.0 / 16.0);
        assert_eq!(f.min_value(), -8.0);
    }

    #[test]
    fn round_trip_error_is_bounded() {
        let f = FixedPointFormat::new(8, 4);
        for i in -100..100 {
            let x = i as f32 * 0.07;
            if x > f.min_value() && x < f.max_value() {
                assert!((f.round_trip(x) - x).abs() <= f.max_error() + 1e-6);
            }
        }
    }

    #[test]
    fn saturation_clamps() {
        let f = FixedPointFormat::new(8, 4);
        assert_eq!(f.round_trip(100.0), f.max_value());
        assert_eq!(f.round_trip(-100.0), f.min_value());
    }

    #[test]
    fn calibrate_wide_range_drops_fraction() {
        // Range [-100, 100] with 8 bits: needs 7 integer bits -> frac 0.
        let f = FixedPointFormat::calibrate(-100.0, 100.0, 8);
        assert_eq!(f.frac_bits, 0);
        assert!(f.max_value() >= 100.0);
    }

    #[test]
    fn calibrate_narrow_range_keeps_fraction() {
        // Range [0, 5] with 8 bits: 3 integer bits + sign -> frac 4.
        let f = FixedPointFormat::calibrate(0.0, 5.0, 8);
        assert_eq!(f.frac_bits, 4);
        assert!(f.max_value() >= 5.0);
    }

    #[test]
    fn calibrate_matches_paper_example() {
        // §4.4 example: input range [-100, 100] vs output range [0, 5]
        // should get different fixed-point positions.
        let fin = FixedPointFormat::calibrate(-100.0, 100.0, 16);
        let fout = FixedPointFormat::calibrate(0.0, 5.0, 16);
        assert!(fout.frac_bits > fin.frac_bits);
    }

    #[test]
    fn zero_is_exact() {
        for bits in [4u8, 8, 16] {
            for frac in 0..bits - 1 {
                let f = FixedPointFormat::new(bits, frac);
                assert_eq!(f.round_trip(0.0), 0.0);
            }
        }
    }

    #[test]
    fn slice_helpers() {
        let f = FixedPointFormat::new(8, 0);
        assert_eq!(quantize_slice(f, &[1.4, -2.6]), vec![1, -3]);
        assert_eq!(round_trip_slice(f, &[1.4, -2.6]), vec![1.0, -3.0]);
    }
}

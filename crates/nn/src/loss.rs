//! Loss functions returning `(loss, gradient-with-respect-to-input)`.

use crate::layers::softmax_rows;
use crate::tensor::Tensor;

/// Softmax cross-entropy from logits for integer class labels.
///
/// Returns the mean loss over the batch and the gradient w.r.t. the logits
/// (already divided by the batch size, ready for `Sequential::backward`).
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().len(), 2);
    assert_eq!(logits.rows(), labels.len(), "one label per row required");
    let probs = softmax_rows(logits);
    let n = labels.len() as f32;
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < logits.cols(), "label {y} out of range for {} classes", logits.cols());
        let p = probs.at2(r, y).max(1e-12);
        loss -= p.ln();
        *grad.at2_mut(r, y) -= 1.0;
    }
    (loss / n, grad.scale(1.0 / n))
}

/// Mean squared error between prediction and target.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape());
    let n = pred.len() as f32;
    let diff = pred.sub(target);
    let loss = diff.norm_sq() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Mean absolute error — the reconstruction metric the paper's AutoEncoder
/// uses for anomaly scoring (§6.3, §7.4).
pub fn mae(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape());
    let n = pred.len() as f32;
    let diff = pred.sub(target);
    let loss = diff.data().iter().map(|&d| d.abs()).sum::<f32>() / n;
    let grad = diff.map(|d| d.signum() / n);
    (loss, grad)
}

/// Per-row mean absolute error (one anomaly score per sample).
pub fn mae_per_row(pred: &Tensor, target: &Tensor) -> Vec<f32> {
    assert_eq!(pred.shape(), target.shape());
    assert_eq!(pred.shape().len(), 2);
    let cols = pred.cols() as f32;
    (0..pred.rows())
        .map(|r| {
            pred.row(r).iter().zip(target.row(r).iter()).map(|(&a, &b)| (a - b).abs()).sum::<f32>()
                / cols
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_is_low_for_confident_correct() {
        let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn cross_entropy_is_high_for_confident_wrong() {
        let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]);
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss > 5.0, "loss {loss}");
    }

    #[test]
    fn cross_entropy_grad_points_toward_target() {
        let logits = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        let (_, grad) = softmax_cross_entropy(&logits, &[0]);
        // grad = p - onehot = [0.5-1, 0.5] = [-0.5, 0.5]
        assert!((grad.at2(0, 0) + 0.5).abs() < 1e-6);
        assert!((grad.at2(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let logits = Tensor::from_vec(vec![0.2, -0.4, 0.9, 1.0, 0.0, -1.0], &[2, 3]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3_f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &labels);
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (loss_m, _) = softmax_cross_entropy(&lm, &labels);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[idx]).abs() < 1e-3,
                "idx {idx}: numeric {numeric} vs analytic {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn mse_basics() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let (loss, grad) = mse(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn mae_basics() {
        let p = Tensor::from_slice(&[1.0, -3.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let (loss, grad) = mae(&p, &t);
        assert!((loss - 2.0).abs() < 1e-6);
        assert_eq!(grad.data(), &[0.5, -0.5]);
    }

    #[test]
    fn mae_per_row_scores() {
        let p = Tensor::from_vec(vec![1.0, 1.0, 0.0, 4.0], &[2, 2]);
        let t = Tensor::zeros(&[2, 2]);
        let scores = mae_per_row(&p, &t);
        assert_eq!(scores, vec![1.0, 2.0]);
    }
}

//! Labeled datasets and batching for the training loop.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// An in-memory labeled dataset: one feature row per sample.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Feature matrix `[n, feat]` (or `[n, time*feat]` flattened sequences —
    /// the consumer decides how to reshape).
    pub x: Tensor,
    /// Integer class label per row.
    pub y: Vec<usize>,
}

impl Dataset {
    /// Builds a dataset, validating row/label parity.
    pub fn new(x: Tensor, y: Vec<usize>) -> Self {
        assert_eq!(x.shape()[0], y.len(), "one label per feature row required");
        Dataset { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of distinct classes (max label + 1).
    pub fn classes(&self) -> usize {
        self.y.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Returns shuffled mini-batches of up to `batch_size` samples.
    pub fn batches(&self, batch_size: usize, rng: &mut StdRng) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.chunks(batch_size)
            .map(|chunk| {
                let xb = self.x.select_rows(chunk);
                let yb = chunk.iter().map(|&i| self.y[i]).collect();
                (xb, yb)
            })
            .collect()
    }

    /// Takes a sub-dataset by row indices.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset { x: self.x.select_rows(idx), y: idx.iter().map(|&i| self.y[i]).collect() }
    }

    /// Per-column min/max over the features — used for fixed-point
    /// calibration and fuzzy-tree domain bounds.
    pub fn feature_ranges(&self) -> Vec<(f32, f32)> {
        let cols = self.x.cols();
        let mut ranges = vec![(f32::MAX, f32::MIN); cols];
        for r in 0..self.x.rows() {
            for (c, range) in ranges.iter_mut().enumerate() {
                let v = self.x.at2(r, c);
                range.0 = range.0.min(v);
                range.1 = range.1.max(v);
            }
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    fn toy() -> Dataset {
        Dataset::new(
            Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], &[4, 2]),
            vec![0, 1, 0, 1],
        )
    }

    #[test]
    fn classes_counts_labels() {
        assert_eq!(toy().classes(), 2);
    }

    #[test]
    fn batches_cover_all_rows() {
        let d = toy();
        let batches = d.batches(3, &mut rng(1));
        let total: usize = batches.iter().map(|(_, y)| y.len()).sum();
        assert_eq!(total, 4);
        assert_eq!(batches[0].0.shape()[1], 2);
    }

    #[test]
    fn batches_pair_rows_with_labels() {
        let d = toy();
        for (xb, yb) in d.batches(2, &mut rng(2)) {
            for (r, &label) in yb.iter().enumerate() {
                // In `toy`, label == (row_first_value / 2) % 2.
                let first = xb.at2(r, 0);
                assert_eq!(((first as usize) / 2) % 2, label);
            }
        }
    }

    #[test]
    fn subset_selects() {
        let d = toy().subset(&[3, 0]);
        assert_eq!(d.y, vec![1, 0]);
        assert_eq!(d.x.row(0), &[6.0, 7.0]);
    }

    #[test]
    fn feature_ranges_span_data() {
        let r = toy().feature_ranges();
        assert_eq!(r[0], (0.0, 6.0));
        assert_eq!(r[1], (1.0, 7.0));
    }
}

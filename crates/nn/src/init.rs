//! Weight initialization and a deterministic RNG wrapper.
//!
//! All randomness in the workspace flows through seeded [`rand::rngs::StdRng`]
//! instances so that every experiment is bit-reproducible from its `--seed`.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the workspace-standard seeded RNG.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a tensor from a uniform distribution on `[-limit, limit]`.
pub fn uniform(rng: &mut StdRng, shape: &[usize], limit: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-limit..=limit)).collect();
    Tensor::from_vec(data, shape)
}

/// Samples a tensor from `N(0, std^2)` using Box-Muller.
pub fn normal(rng: &mut StdRng, shape: &[usize], std: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform initialization for a weight of shape
/// `[fan_in, fan_out]` (or conv kernels where the first two axes dominate).
pub fn xavier(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let (fan_in, fan_out) = fans(shape);
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, shape, limit)
}

/// He/Kaiming normal initialization (preferred before ReLU).
pub fn he(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let (fan_in, _) = fans(shape);
    let std = (2.0 / fan_in as f32).sqrt();
    normal(rng, shape, std)
}

fn fans(shape: &[usize]) -> (usize, usize) {
    match shape.len() {
        1 => (shape[0], shape[0]),
        2 => (shape[0], shape[1]),
        // Conv1d kernels are [out_ch, in_ch, k]: fan_in = in_ch*k.
        3 => (shape[1] * shape[2], shape[0] * shape[2]),
        _ => {
            let n: usize = shape.iter().product();
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = normal(&mut rng(7), &[4, 4], 1.0);
        let b = normal(&mut rng(7), &[4, 4], 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = normal(&mut rng(7), &[4, 4], 1.0);
        let b = normal(&mut rng(8), &[4, 4], 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_respects_limit() {
        let t = uniform(&mut rng(1), &[1000], 0.5);
        assert!(t.data().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let t = normal(&mut rng(2), &[10000], 2.0);
        let mean = t.mean();
        let var = t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn xavier_limit_shrinks_with_width() {
        let narrow = xavier(&mut rng(3), &[4, 4]);
        let wide = xavier(&mut rng(3), &[400, 400]);
        assert!(narrow.max() > wide.max());
    }
}

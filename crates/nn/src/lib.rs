//! # pegasus-nn — deep-learning substrate for the Pegasus reproduction
//!
//! A from-scratch, dependency-light neural-network library providing exactly
//! what the Pegasus paper needs:
//!
//! * **Training** the six §6.3 models (MLP-B, RNN-B, CNN-B/M/L, AutoEncoder)
//!   at full precision — see [`layers`], [`model`], [`optim`], [`train`];
//! * **Introspection** of trained models via [`model::ModelSpec`] /
//!   [`layers::LayerSpec`] so the Pegasus compiler (`pegasus-core`) can lower
//!   them onto dataplane primitives;
//! * **Binary networks** with straight-through estimators for the N3IC and
//!   BoS baselines ([`layers::BinaryDense`]);
//! * **Fixed-point quantization** ([`quant`]) implementing the paper's
//!   Adaptive Fixed-Point Quantization (§4.4);
//! * **Evaluation metrics** ([`metrics`]): macro-F1 ("macro-accuracy", §7.1),
//!   precision/recall, ROC/AUC for Figure 8.
//!
//! The library is deliberately eager and single-threaded: the reproduction's
//! training sets are small, and determinism (seeded [`init::rng`]) matters
//! more than speed. Per the Tokio guidance for CPU-bound work, throughput
//! experiments parallelize at the *harness* level with OS threads instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod init;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod quant;
pub mod tensor;
pub mod train;

pub use data::Dataset;
pub use model::{ModelSpec, Sequential};
pub use tensor::Tensor;

//! Element-wise activation layers (ReLU, tanh, sigmoid) and row-wise softmax.

use super::{Layer, LayerSpec};
use crate::tensor::Tensor;

/// Rectified linear unit: `max(0, x)`.
#[derive(Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(x.clone());
        }
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        grad_out.zip_map(x, |g, v| if v > 0.0 { g } else { 0.0 })
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Relu
    }

    fn name(&self) -> &'static str {
        "Relu"
    }
}

/// Hyperbolic tangent activation.
#[derive(Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = x.map(f32::tanh);
        if train {
            self.cached_output = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cached_output.as_ref().expect("backward before forward");
        grad_out.zip_map(y, |g, t| g * (1.0 - t * t))
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Tanh
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }
}

/// Logistic sigmoid activation.
#[derive(Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

/// Numerically stable scalar sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = x.map(sigmoid);
        if train {
            self.cached_output = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cached_output.as_ref().expect("backward before forward");
        grad_out.zip_map(y, |g, s| g * s * (1.0 - s))
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Sigmoid
    }

    fn name(&self) -> &'static str {
        "Sigmoid"
    }
}

/// Row-wise softmax over a 2-D tensor.
///
/// For training classifiers prefer
/// [`crate::loss::softmax_cross_entropy`], which fuses softmax with the loss
/// for numerical stability; this standalone layer exists because the paper's
/// operator taxonomy (Table 4) lowers Softmax to Map → SumReduce → Map on the
/// dataplane and the compiler needs a reference implementation.
#[derive(Default)]
pub struct Softmax {
    cached_output: Option<Tensor>,
}

impl Softmax {
    /// Creates a softmax layer.
    pub fn new() -> Self {
        Softmax::default()
    }
}

/// Row-wise softmax helper (max-subtracted for stability).
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().len(), 2);
    let mut out = x.clone();
    let cols = x.cols();
    for r in 0..x.rows() {
        let row = out.row_mut(r);
        let m = row.iter().copied().fold(f32::MIN, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        debug_assert!(sum > 0.0 && cols > 0);
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

impl Layer for Softmax {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = softmax_rows(x);
        if train {
            self.cached_output = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cached_output.as_ref().expect("backward before forward");
        // dx_i = y_i * (g_i - sum_j g_j y_j), row-wise.
        let mut out = Tensor::zeros(y.shape());
        for r in 0..y.rows() {
            let yr = y.row(r);
            let gr = grad_out.row(r);
            let dot: f32 = yr.iter().zip(gr.iter()).map(|(&a, &b)| a * b).sum();
            for (o, (&yi, &gi)) in out.row_mut(r).iter_mut().zip(yr.iter().zip(gr.iter())) {
                *o = yi * (gi - dot);
            }
        }
        out
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Softmax
    }

    fn name(&self) -> &'static str {
        "Softmax"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut l = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]).reshape(&[1, 3]);
        assert_eq!(l.forward(&x, false).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut l = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 3.0]).reshape(&[1, 2]);
        let _ = l.forward(&x, true);
        let g = Tensor::from_slice(&[5.0, 5.0]).reshape(&[1, 2]);
        assert_eq!(l.backward(&g).data(), &[0.0, 5.0]);
    }

    #[test]
    fn tanh_matches_std() {
        let mut l = Tanh::new();
        let x = Tensor::from_slice(&[0.5]).reshape(&[1, 1]);
        let y = l.forward(&x, false);
        assert!((y.data()[0] - 0.5f32.tanh()).abs() < 1e-7);
    }

    #[test]
    fn tanh_gradient() {
        let mut l = Tanh::new();
        let x = Tensor::from_slice(&[0.7]).reshape(&[1, 1]);
        let _ = l.forward(&x, true);
        let g = Tensor::ones(&[1, 1]);
        let got = l.backward(&g).data()[0];
        let t = 0.7f32.tanh();
        assert!((got - (1.0 - t * t)).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0).abs() < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]);
        let y = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone: bigger logit, bigger probability.
        assert!(y.at2(0, 2) > y.at2(0, 1));
    }

    #[test]
    fn softmax_backward_is_zero_for_uniform_grad() {
        // If dL/dy is constant, dL/dx must vanish (softmax is shift-invariant).
        let mut l = Softmax::new();
        let x = Tensor::from_vec(vec![0.3, -1.0, 2.0], &[1, 3]);
        let _ = l.forward(&x, true);
        let g = Tensor::full(&[1, 3], 3.0);
        let gx = l.backward(&g);
        assert!(gx.data().iter().all(|&v| v.abs() < 1e-6));
    }
}

//! Structural helper layers: flatten, axis transpose, dropout.

use super::{Layer, LayerSpec};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Flattens `[batch, ...]` into `[batch, prod(...)]`.
#[derive(Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert!(!x.shape().is_empty());
        if train {
            self.in_shape = x.shape().to_vec();
        }
        let batch = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        x.reshape(&[batch, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshape(&self.in_shape)
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Flatten
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

/// Swaps axes 1 and 2 of a 3-D tensor: `[b, t, d] -> [b, d, t]`.
///
/// Needed between an [`super::Embedding`] (which produces `[batch, time,
/// dim]`) and a [`super::Conv1d`] (which consumes `[batch, ch, len]` with
/// channels = embedding dim) — the textcnn wiring of the paper's CNN models.
#[derive(Default)]
pub struct Transpose12;

impl Transpose12 {
    /// Creates the transpose layer.
    pub fn new() -> Self {
        Transpose12
    }

    fn apply(x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 3, "Transpose12 expects a 3-D tensor");
        let (a, b, c) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut y = Tensor::zeros(&[a, c, b]);
        for ai in 0..a {
            for bi in 0..b {
                for ci in 0..c {
                    *y.at3_mut(ai, ci, bi) = x.at3(ai, bi, ci);
                }
            }
        }
        y
    }
}

impl Layer for Transpose12 {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        Self::apply(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // The transpose is its own inverse (on swapped axes).
        Self::apply(grad_out)
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Transpose12
    }

    fn name(&self) -> &'static str {
        "Transpose12"
    }
}

/// Inverted dropout: at train time zeroes each element with probability `p`
/// and rescales survivors by `1/(1-p)`; identity at inference.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        Dropout { p, rng: StdRng::seed_from_u64(0x9e3779b97f4a7c15), mask: None }
    }

    /// Re-seeds the internal mask RNG (for reproducible training).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask_data: Vec<f32> = (0..x.len())
            .map(|_| if self.rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(mask_data, x.shape());
        let y = x.mul(&mask);
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            Some(m) => grad_out.mul(m),
            None => grad_out.clone(),
        }
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Dropout { p: self.p }
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

/// Selects columns `[offset, offset+len)` of a `[batch, cols]` tensor.
///
/// NAM-form models (Advanced Primitive Fusion ❸) give each parallel branch
/// a private input segment; this layer is the trainable-graph counterpart
/// of the Partition primitive.
pub struct SliceCols {
    offset: usize,
    len: usize,
    in_cols: usize,
}

impl SliceCols {
    /// Creates a column slice.
    pub fn new(offset: usize, len: usize) -> Self {
        assert!(len >= 1);
        SliceCols { offset, len, in_cols: 0 }
    }
}

impl Layer for SliceCols {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "SliceCols expects [batch, cols]");
        assert!(self.offset + self.len <= x.cols(), "slice out of range");
        if train {
            self.in_cols = x.cols();
        }
        let rows = x.rows();
        let mut out = Tensor::zeros(&[rows, self.len]);
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(&x.row(r)[self.offset..self.offset + self.len]);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let rows = grad_out.rows();
        let mut gx = Tensor::zeros(&[rows, self.in_cols]);
        for r in 0..rows {
            gx.row_mut(r)[self.offset..self.offset + self.len].copy_from_slice(grad_out.row(r));
        }
        gx
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::SliceCols { offset: self.offset, len: self.len }
    }

    fn name(&self) -> &'static str {
        "SliceCols"
    }
}

#[cfg(test)]
mod slice_tests {
    use super::*;

    #[test]
    fn slice_selects_columns() {
        let mut s = SliceCols::new(1, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let y = s.forward(&x, true);
        assert_eq!(y.data(), &[2.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_backward_scatters() {
        let mut s = SliceCols::new(1, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let _ = s.forward(&x, true);
        let g = Tensor::ones(&[2, 2]);
        let gx = s.backward(&g);
        assert_eq!(gx.data(), &[0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 12]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 4]);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn transpose12_swaps() {
        let mut t = Transpose12::new();
        let x = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[1, 2, 3]);
        let y = t.forward(&x, false);
        assert_eq!(y.shape(), &[1, 3, 2]);
        assert_eq!(y.at3(0, 2, 1), x.at3(0, 1, 2));
    }

    #[test]
    fn transpose12_backward_is_inverse() {
        let mut t = Transpose12::new();
        let x = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 2, 3]);
        let y = t.forward(&x, true);
        let back = t.backward(&y);
        assert_eq!(back, x);
    }

    #[test]
    fn dropout_identity_at_inference() {
        let mut d = Dropout::new(0.5);
        let x = Tensor::ones(&[4, 4]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn dropout_scales_survivors() {
        let mut d = Dropout::new(0.5);
        d.reseed(42);
        let x = Tensor::ones(&[1, 1000]);
        let y = d.forward(&x, true);
        // Survivors are scaled to 2.0; mean stays near 1.0.
        assert!(y.data().iter().all(|&v| v == 0.0 || v == 2.0));
        assert!((y.mean() - 1.0).abs() < 0.1);
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.3);
        d.reseed(7);
        let x = Tensor::ones(&[1, 100]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(&[1, 100]));
        assert_eq!(y.data(), g.data());
    }
}

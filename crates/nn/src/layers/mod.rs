//! Neural-network layers with explicit forward/backward passes.
//!
//! Every layer implements [`Layer`]: `forward` caches whatever the backward
//! pass needs, `backward` consumes the output gradient, accumulates parameter
//! gradients and returns the input gradient. There is no autograd tape — the
//! model graph is a [`crate::model::Sequential`] chain (plus [`Parallel`]
//! branches), which is all the paper's six models require.
//!
//! Layers are introspectable through [`LayerSpec`]: a serializable, complete
//! description (structure + weights). The Pegasus compiler in `pegasus-core`
//! consumes specs to lower trained models onto dataplane primitives, and
//! [`build_layer`] reconstructs a live layer from a spec for round-tripping.

mod act;
mod conv;
mod dense;
mod embedding;
mod misc;
mod norm;
mod parallel;
mod pool;
mod rnn;

pub use act::{sigmoid, softmax_rows, Relu, Sigmoid, Softmax, Tanh};
pub use conv::Conv1d;
pub use dense::{sign_pm1, BinaryDense, Dense};
pub use embedding::Embedding;
pub use misc::SliceCols;
pub use misc::{Dropout, Flatten, Transpose12};
pub use norm::{BatchNorm1d, NormMode};
pub use parallel::{Combine, Parallel};
pub use pool::{AvgPool1d, GlobalMaxPool1d, MaxPool1d};
pub use rnn::Rnn;

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter: its value and the gradient accumulated by the most
/// recent backward pass.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss with respect to `value`.
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value with a zeroed gradient of matching shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_in_place(|_| 0.0);
    }
}

/// A neural-network layer with explicit backpropagation.
pub trait Layer: Send {
    /// Computes the layer output; caches intermediates when `train` is true
    /// (and whenever the backward pass needs them).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_out`, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    ///
    /// Must be called after `forward` with `train = true`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to the layer's trainable parameters (may be empty).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// A complete, serializable description of this layer (structure and
    /// current weights).
    fn spec(&self) -> LayerSpec;

    /// A short human-readable layer name for debugging and reports.
    fn name(&self) -> &'static str;

    /// Freezes/unfreezes internal statistics (batch-norm running stats).
    /// Frozen layers behave like inference-time transforms during training
    /// passes — needed when fine-tuning against the *deployed* function
    /// (§4.4 centroid fine-tuning). Default: no-op.
    fn set_frozen(&mut self, _frozen: bool) {}

    /// Number of trainable scalar parameters.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }
}

/// Serializable description of a layer, including its weights.
///
/// This is the contract between the training substrate and the Pegasus
/// compiler: `pegasus-core` never touches live layers, only specs.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are self-describing (weight/bias/...)
pub enum LayerSpec {
    /// Fully connected: `y = x W + b`, weight is `[in, out]`.
    Dense { weight: Tensor, bias: Tensor },
    /// Fully connected with sign-binarized weights (N3IC substrate);
    /// `weight` stores the latent full-precision values.
    BinaryDense { weight: Tensor, bias: Tensor },
    /// 1-D convolution over `[batch, in_ch, len]`; kernel is
    /// `[out_ch, in_ch, k]`.
    Conv1d { kernel: Tensor, bias: Tensor, stride: usize, padding: usize },
    /// Batch normalization (feature or channel mode).
    BatchNorm1d {
        gamma: Tensor,
        beta: Tensor,
        running_mean: Tensor,
        running_var: Tensor,
        eps: f32,
        mode: NormMode,
    },
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Row-wise softmax.
    Softmax,
    /// Max pooling over the last axis of `[batch, ch, len]`.
    MaxPool1d { k: usize, stride: usize },
    /// Average pooling over the last axis of `[batch, ch, len]`.
    AvgPool1d { k: usize, stride: usize },
    /// Global max pooling: `[batch, ch, len] -> [batch, ch]`.
    GlobalMaxPool1d,
    /// Embedding lookup: `[batch, time]` of indices -> `[batch, time, dim]`.
    Embedding { table: Tensor },
    /// Flattens everything after the batch axis.
    Flatten,
    /// Swaps axes 1 and 2 of a 3-D tensor.
    Transpose12,
    /// Inverted dropout (train-time only).
    Dropout { p: f32 },
    /// Elman recurrent layer over `[batch, time, feat]`, returns the final
    /// hidden state `[batch, hidden]`.
    Rnn { wx: Tensor, wh: Tensor, bias: Tensor },
    /// Parallel branches over the same input; 2-D outputs combined by
    /// concatenation (textcnn) or summation (NAM form).
    Parallel { branches: Vec<Vec<LayerSpec>>, combine: Combine },
    /// Takes columns `[offset, offset+len)` of a 2-D input — how NAM-form
    /// branches see their private input segment.
    SliceCols { offset: usize, len: usize },
}

impl LayerSpec {
    /// A short name matching [`Layer::name`].
    pub fn name(&self) -> &'static str {
        match self {
            LayerSpec::Dense { .. } => "Dense",
            LayerSpec::BinaryDense { .. } => "BinaryDense",
            LayerSpec::Conv1d { .. } => "Conv1d",
            LayerSpec::BatchNorm1d { .. } => "BatchNorm1d",
            LayerSpec::Relu => "Relu",
            LayerSpec::Tanh => "Tanh",
            LayerSpec::Sigmoid => "Sigmoid",
            LayerSpec::Softmax => "Softmax",
            LayerSpec::MaxPool1d { .. } => "MaxPool1d",
            LayerSpec::AvgPool1d { .. } => "AvgPool1d",
            LayerSpec::GlobalMaxPool1d => "GlobalMaxPool1d",
            LayerSpec::Embedding { .. } => "Embedding",
            LayerSpec::Flatten => "Flatten",
            LayerSpec::Transpose12 => "Transpose12",
            LayerSpec::Dropout { .. } => "Dropout",
            LayerSpec::Rnn { .. } => "Rnn",
            LayerSpec::Parallel { .. } => "Parallel",
            LayerSpec::SliceCols { .. } => "SliceCols",
        }
    }

    /// True when the layer computes an element-wise *linear* function,
    /// which the fusion passes in `pegasus-core` may reorder freely.
    pub fn is_elementwise_linear(&self) -> bool {
        matches!(self, LayerSpec::BatchNorm1d { .. })
    }

    /// Number of scalar parameters carried by the spec (counting latent
    /// weights once).
    pub fn param_count(&self) -> usize {
        match self {
            LayerSpec::Dense { weight, bias } | LayerSpec::BinaryDense { weight, bias } => {
                weight.len() + bias.len()
            }
            LayerSpec::Conv1d { kernel, bias, .. } => kernel.len() + bias.len(),
            LayerSpec::BatchNorm1d { gamma, beta, .. } => gamma.len() + beta.len(),
            LayerSpec::Embedding { table } => table.len(),
            LayerSpec::Rnn { wx, wh, bias } => wx.len() + wh.len() + bias.len(),
            LayerSpec::Parallel { branches, .. } => {
                branches.iter().flatten().map(|s| s.param_count()).sum()
            }
            _ => 0,
        }
    }
}

/// Reconstructs a live layer from its spec.
pub fn build_layer(spec: &LayerSpec) -> Box<dyn Layer> {
    match spec.clone() {
        LayerSpec::Dense { weight, bias } => Box::new(Dense::from_parts(weight, bias)),
        LayerSpec::BinaryDense { weight, bias } => Box::new(BinaryDense::from_parts(weight, bias)),
        LayerSpec::Conv1d { kernel, bias, stride, padding } => {
            Box::new(Conv1d::from_parts(kernel, bias, stride, padding))
        }
        LayerSpec::BatchNorm1d { gamma, beta, running_mean, running_var, eps, mode } => {
            Box::new(BatchNorm1d::from_parts(gamma, beta, running_mean, running_var, eps, mode))
        }
        LayerSpec::Relu => Box::new(Relu::new()),
        LayerSpec::Tanh => Box::new(Tanh::new()),
        LayerSpec::Sigmoid => Box::new(Sigmoid::new()),
        LayerSpec::Softmax => Box::new(Softmax::new()),
        LayerSpec::MaxPool1d { k, stride } => Box::new(MaxPool1d::new(k, stride)),
        LayerSpec::AvgPool1d { k, stride } => Box::new(AvgPool1d::new(k, stride)),
        LayerSpec::GlobalMaxPool1d => Box::new(GlobalMaxPool1d::new()),
        LayerSpec::Embedding { table } => Box::new(Embedding::from_parts(table)),
        LayerSpec::Flatten => Box::new(Flatten::new()),
        LayerSpec::Transpose12 => Box::new(Transpose12::new()),
        LayerSpec::Dropout { p } => Box::new(Dropout::new(p)),
        LayerSpec::Rnn { wx, wh, bias } => Box::new(Rnn::from_parts(wx, wh, bias)),
        LayerSpec::Parallel { branches, combine } => {
            Box::new(Parallel::from_specs(&branches, combine))
        }
        LayerSpec::SliceCols { offset, len } => Box::new(SliceCols::new(offset, len)),
    }
}

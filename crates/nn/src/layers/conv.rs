//! 1-D convolution over `[batch, in_ch, len]` tensors.
//!
//! The paper's CNN models (CNN-B/M/L, §6.3) are 1-D textcnn-style networks
//! over packet sequences, so only Conv1d is needed — no 2-D convolutions.

use super::{Layer, LayerSpec, Param};
use crate::init;
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// 1-D convolution with kernel `[out_ch, in_ch, k]`, stride and zero padding.
pub struct Conv1d {
    kernel: Param,
    bias: Param,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// Creates a Xavier-initialized convolution.
    pub fn new(
        rng: &mut StdRng,
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(stride >= 1, "stride must be >= 1");
        Conv1d {
            kernel: Param::new(init::xavier(rng, &[out_ch, in_ch, k])),
            bias: Param::new(Tensor::zeros(&[out_ch])),
            stride,
            padding,
            cached_input: None,
        }
    }

    /// Rebuilds a convolution from existing weights.
    pub fn from_parts(kernel: Tensor, bias: Tensor, stride: usize, padding: usize) -> Self {
        assert_eq!(kernel.shape().len(), 3, "kernel must be [out_ch, in_ch, k]");
        assert_eq!(bias.len(), kernel.shape()[0]);
        Conv1d {
            kernel: Param::new(kernel),
            bias: Param::new(bias),
            stride,
            padding,
            cached_input: None,
        }
    }

    /// Output length for an input of length `len`.
    pub fn out_len(&self, len: usize) -> usize {
        let k = self.kernel.value.shape()[2];
        let padded = len + 2 * self.padding;
        assert!(padded >= k, "input too short for kernel: len {len}, k {k}");
        (padded - k) / self.stride + 1
    }

    /// The `[out_ch, in_ch, k]` kernel.
    pub fn kernel(&self) -> &Tensor {
        &self.kernel.value
    }

    /// The `[out_ch]` bias.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    /// `(stride, padding)` hyper-parameters.
    pub fn hyper(&self) -> (usize, usize) {
        (self.stride, self.padding)
    }

    /// Input sample at a possibly-padded position (zero outside the input).
    #[inline]
    fn padded_at(x: &Tensor, b: usize, c: usize, pos: isize, len: usize) -> f32 {
        if pos < 0 || pos as usize >= len {
            0.0
        } else {
            x.at3(b, c, pos as usize)
        }
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "Conv1d expects [batch, in_ch, len]");
        let (batch, in_ch, len) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let (out_ch, kin, k) = (
            self.kernel.value.shape()[0],
            self.kernel.value.shape()[1],
            self.kernel.value.shape()[2],
        );
        assert_eq!(in_ch, kin, "channel mismatch: input {in_ch} vs kernel {kin}");
        let out_len = self.out_len(len);
        if train {
            self.cached_input = Some(x.clone());
        }
        let mut y = Tensor::zeros(&[batch, out_ch, out_len]);
        for b in 0..batch {
            for oc in 0..out_ch {
                for ol in 0..out_len {
                    let start = (ol * self.stride) as isize - self.padding as isize;
                    let mut acc = self.bias.value.data()[oc];
                    for ic in 0..in_ch {
                        for ki in 0..k {
                            let v = Self::padded_at(x, b, ic, start + ki as isize, len);
                            if v != 0.0 {
                                acc += v * self.kernel.value.at3(oc, ic, ki);
                            }
                        }
                    }
                    *y.at3_mut(b, oc, ol) = acc;
                }
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let (batch, in_ch, len) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let (out_ch, _, k) = (
            self.kernel.value.shape()[0],
            self.kernel.value.shape()[1],
            self.kernel.value.shape()[2],
        );
        let out_len = grad_out.shape()[2];

        let mut gx = Tensor::zeros(x.shape());
        for b in 0..batch {
            for oc in 0..out_ch {
                for ol in 0..out_len {
                    let g = grad_out.at3(b, oc, ol);
                    if g == 0.0 {
                        continue;
                    }
                    self.bias.grad.data_mut()[oc] += g;
                    let start = (ol * self.stride) as isize - self.padding as isize;
                    for ic in 0..in_ch {
                        for ki in 0..k {
                            let pos = start + ki as isize;
                            if pos < 0 || pos as usize >= len {
                                continue;
                            }
                            let p = pos as usize;
                            *self.kernel.grad.at3_mut(oc, ic, ki) += g * x.at3(b, ic, p);
                            *gx.at3_mut(b, ic, p) += g * self.kernel.value.at3(oc, ic, ki);
                        }
                    }
                }
            }
        }
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.kernel, &mut self.bias]
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Conv1d {
            kernel: self.kernel.value.clone(),
            bias: self.bias.value.clone(),
            stride: self.stride,
            padding: self.padding,
        }
    }

    fn name(&self) -> &'static str {
        "Conv1d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    fn fixed_conv() -> Conv1d {
        // 1 in-ch, 1 out-ch, k=2 kernel [1, -1]: discrete difference.
        let kernel = Tensor::from_vec(vec![1.0, -1.0], &[1, 1, 2]);
        let bias = Tensor::zeros(&[1]);
        Conv1d::from_parts(kernel, bias, 1, 0)
    }

    #[test]
    fn forward_difference_kernel() {
        let mut c = fixed_conv();
        let x = Tensor::from_vec(vec![1.0, 3.0, 6.0, 10.0], &[1, 1, 4]);
        let y = c.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.data(), &[-2.0, -3.0, -4.0]);
    }

    #[test]
    fn forward_with_padding() {
        let mut c = Conv1d::from_parts(
            Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 1, 3]),
            Tensor::zeros(&[1]),
            1,
            1,
        );
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]);
        let y = c.forward(&x, false);
        // Padded input: [0,1,2,3,0]; moving window sum of width 3.
        assert_eq!(y.data(), &[3.0, 6.0, 5.0]);
    }

    #[test]
    fn forward_with_stride() {
        let mut c = Conv1d::from_parts(
            Tensor::from_vec(vec![1.0, 0.0], &[1, 1, 2]),
            Tensor::zeros(&[1]),
            2,
            0,
        );
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[1, 1, 5]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), &[1.0, 3.0]);
    }

    #[test]
    fn multi_channel_sums_channels() {
        // 2 in-ch, 1 out-ch, k=1: y = x0 + 2*x1.
        let kernel = Tensor::from_vec(vec![1.0, 2.0], &[1, 2, 1]);
        let mut c = Conv1d::from_parts(kernel, Tensor::zeros(&[1]), 1, 0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[1, 2, 2]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), &[21.0, 42.0]);
    }

    #[test]
    fn bias_is_added() {
        let kernel = Tensor::from_vec(vec![1.0], &[1, 1, 1]);
        let bias = Tensor::from_slice(&[5.0]);
        let mut c = Conv1d::from_parts(kernel, bias, 1, 0);
        let x = Tensor::from_vec(vec![1.0], &[1, 1, 1]);
        assert_eq!(c.forward(&x, false).data(), &[6.0]);
    }

    #[test]
    fn gradcheck_kernel() {
        let mut r = rng(5);
        let mut c = Conv1d::new(&mut r, 2, 3, 3, 1, 1);
        let x = init::normal(&mut r, &[2, 2, 6], 1.0);
        let y = c.forward(&x, true);
        let g = Tensor::ones(y.shape());
        let _ = c.backward(&g);
        let analytic = c.kernel.grad.clone();
        let eps = 1e-2_f32;
        for idx in [0usize, 7, 17] {
            let orig = c.kernel.value.data()[idx];
            c.kernel.value.data_mut()[idx] = orig + eps;
            let lp = c.forward(&x, false).sum();
            c.kernel.value.data_mut()[idx] = orig - eps;
            let lm = c.forward(&x, false).sum();
            c.kernel.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[idx]).abs() < 0.05 * analytic.data()[idx].abs().max(1.0),
                "idx {idx}: numeric {numeric} vs analytic {}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn gradcheck_input() {
        let mut r = rng(6);
        let mut c = Conv1d::new(&mut r, 1, 2, 2, 1, 0);
        let x = init::normal(&mut r, &[1, 1, 5], 1.0);
        let y = c.forward(&x, true);
        let g = Tensor::ones(y.shape());
        let gx = c.backward(&g);
        let eps = 1e-2_f32;
        let mut xp = x.clone();
        for idx in 0..5 {
            let orig = xp.data()[idx];
            xp.data_mut()[idx] = orig + eps;
            let lp = c.forward(&xp, false).sum();
            xp.data_mut()[idx] = orig - eps;
            let lm = c.forward(&xp, false).sum();
            xp.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[idx]).abs() < 0.05,
                "idx {idx}: numeric {numeric} vs analytic {}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn out_len_formula() {
        let mut r = rng(1);
        let c = Conv1d::new(&mut r, 1, 1, 3, 2, 1);
        // (8 + 2*1 - 3)/2 + 1 = 4
        assert_eq!(c.out_len(8), 4);
    }
}

//! Parallel branches over a shared input — the textcnn multi-kernel pattern.

use super::{build_layer, Layer, LayerSpec, Param};
use crate::tensor::Tensor;

/// How [`Parallel`] combines branch outputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Combine {
    /// Concatenate along columns (the textcnn multi-kernel head).
    Concat,
    /// Element-wise sum — the Neural Additive Model form behind Advanced
    /// Primitive Fusion ❸ (all branches must share an output width).
    Sum,
}

/// Runs several layer chains on the same input and combines their 2-D
/// outputs (concatenation or summation).
///
/// The paper's CNN models follow the textcnn architecture [Zhang & Wallace]:
/// convolutions with different kernel widths run side by side, each reduced
/// by global max pooling, then concatenated before the classifier head. The
/// NAM-form models of Advanced Fusion ❸ instead *sum* per-segment subnet
/// outputs. Each branch is an ordered chain of layers; all branch outputs
/// must be `[batch, k_i]`.
pub struct Parallel {
    branches: Vec<Vec<Box<dyn Layer>>>,
    combine: Combine,
    out_widths: Vec<usize>,
}

impl Parallel {
    /// Creates a concatenating parallel block from branch chains.
    pub fn new(branches: Vec<Vec<Box<dyn Layer>>>) -> Self {
        Parallel::with_combine(branches, Combine::Concat)
    }

    /// Creates a parallel block with an explicit combine mode.
    pub fn with_combine(branches: Vec<Vec<Box<dyn Layer>>>, combine: Combine) -> Self {
        assert!(!branches.is_empty(), "Parallel requires at least one branch");
        Parallel { branches, combine, out_widths: Vec::new() }
    }

    /// Rebuilds a parallel block from specs.
    pub fn from_specs(branches: &[Vec<LayerSpec>], combine: Combine) -> Self {
        let built = branches.iter().map(|chain| chain.iter().map(build_layer).collect()).collect();
        Parallel::with_combine(built, combine)
    }

    /// Number of branches.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }
}

impl Layer for Parallel {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut outs = Vec::with_capacity(self.branches.len());
        for chain in &mut self.branches {
            let mut h = x.clone();
            for layer in chain.iter_mut() {
                h = layer.forward(&h, train);
            }
            assert_eq!(
                h.shape().len(),
                2,
                "Parallel branch must end in a 2-D tensor, got {:?}",
                h.shape()
            );
            outs.push(h);
        }
        self.out_widths = outs.iter().map(|o| o.shape()[1]).collect();
        match self.combine {
            Combine::Concat => {
                let refs: Vec<&Tensor> = outs.iter().collect();
                Tensor::concat_cols(&refs)
            }
            Combine::Sum => {
                let mut acc = outs[0].clone();
                for o in &outs[1..] {
                    acc.add_assign(o);
                }
                acc
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.out_widths.is_empty(), "backward before forward");
        let parts: Vec<Tensor> = match self.combine {
            Combine::Concat => grad_out.split_cols(&self.out_widths),
            Combine::Sum => vec![grad_out.clone(); self.branches.len()],
        };
        let mut grad_in: Option<Tensor> = None;
        for (chain, g) in self.branches.iter_mut().zip(parts) {
            let mut gb = g;
            for layer in chain.iter_mut().rev() {
                gb = layer.backward(&gb);
            }
            grad_in = Some(match grad_in {
                None => gb,
                Some(acc) => acc.add(&gb),
            });
        }
        grad_in.expect("Parallel has at least one branch")
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.branches
            .iter_mut()
            .flat_map(|chain| chain.iter_mut().flat_map(|l| l.params_mut()))
            .collect()
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Parallel {
            branches: self
                .branches
                .iter()
                .map(|chain| chain.iter().map(|l| l.spec()).collect())
                .collect(),
            combine: self.combine,
        }
    }

    fn name(&self) -> &'static str {
        "Parallel"
    }

    fn set_frozen(&mut self, frozen: bool) {
        for chain in &mut self.branches {
            for layer in chain.iter_mut() {
                layer.set_frozen(frozen);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::tensor::Tensor;

    fn two_branch() -> Parallel {
        // Branch A: y = x * [[2]] ; Branch B: y = relu(x * [[-1]]).
        let a: Vec<Box<dyn Layer>> = vec![Box::new(Dense::from_parts(
            Tensor::from_vec(vec![2.0], &[1, 1]),
            Tensor::zeros(&[1]),
        ))];
        let b: Vec<Box<dyn Layer>> = vec![
            Box::new(Dense::from_parts(Tensor::from_vec(vec![-1.0], &[1, 1]), Tensor::zeros(&[1]))),
            Box::new(Relu::new()),
        ];
        Parallel::new(vec![a, b])
    }

    #[test]
    fn forward_concatenates_branches() {
        let mut p = two_branch();
        let x = Tensor::from_vec(vec![3.0], &[1, 1]);
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[6.0, 0.0]);
    }

    #[test]
    fn backward_sums_branch_gradients() {
        let mut p = two_branch();
        let x = Tensor::from_vec(vec![-3.0], &[1, 1]);
        let y = p.forward(&x, true);
        // Branch A gives -6; branch B gives relu(3)=3.
        assert_eq!(y.data(), &[-6.0, 3.0]);
        let g = Tensor::ones(&[1, 2]);
        let gx = p.backward(&g);
        // dA/dx = 2; dB/dx = -1 (relu active). Total 1.
        assert_eq!(gx.data(), &[1.0]);
    }

    #[test]
    fn spec_round_trip() {
        let mut p = two_branch();
        let spec = p.spec();
        let mut rebuilt = match &spec {
            LayerSpec::Parallel { branches, combine } => Parallel::from_specs(branches, *combine),
            _ => unreachable!(),
        };
        let x = Tensor::from_vec(vec![1.5], &[1, 1]);
        assert_eq!(p.forward(&x, false).data(), rebuilt.forward(&x, false).data());
    }

    #[test]
    fn params_cover_all_branches() {
        let mut p = two_branch();
        // 2 dense layers x (weight + bias) = 4 params.
        assert_eq!(p.params_mut().len(), 4);
    }
}

#[cfg(test)]
mod sum_tests {
    use super::*;
    use crate::layers::{Dense, Layer};
    use crate::tensor::Tensor;

    fn sum_block() -> Parallel {
        let a: Vec<Box<dyn Layer>> = vec![Box::new(Dense::from_parts(
            Tensor::from_vec(vec![2.0], &[1, 1]),
            Tensor::zeros(&[1]),
        ))];
        let b: Vec<Box<dyn Layer>> = vec![Box::new(Dense::from_parts(
            Tensor::from_vec(vec![3.0], &[1, 1]),
            Tensor::zeros(&[1]),
        ))];
        Parallel::with_combine(vec![a, b], Combine::Sum)
    }

    #[test]
    fn sum_mode_adds_outputs() {
        let mut p = sum_block();
        let x = Tensor::from_vec(vec![1.0], &[1, 1]);
        assert_eq!(p.forward(&x, false).data(), &[5.0]);
    }

    #[test]
    fn sum_mode_backward_routes_full_grad_to_each_branch() {
        let mut p = sum_block();
        let x = Tensor::from_vec(vec![1.0], &[1, 1]);
        let _ = p.forward(&x, true);
        let gx = p.backward(&Tensor::from_vec(vec![1.0], &[1, 1]));
        // d(2x + 3x)/dx = 5.
        assert_eq!(gx.data(), &[5.0]);
    }
}

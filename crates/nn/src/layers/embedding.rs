//! Embedding lookup: discrete indices to dense vectors.
//!
//! The paper's RNN-B, CNN models and AutoEncoder all start with an Emb layer
//! (Table 4 maps it to a single Map primitive — `f(x) = E[x]`).

use super::{Layer, LayerSpec, Param};
use crate::init;
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Embedding table of shape `[vocab, dim]`.
///
/// The forward input is a `[batch, time]` tensor whose values are
/// non-negative integers stored as `f32` (the tensor substrate is f32-only);
/// the output is `[batch, time, dim]`.
pub struct Embedding {
    table: Param,
    cached_indices: Option<Vec<usize>>,
    cached_in_shape: Vec<usize>,
}

impl Embedding {
    /// Creates a normally initialized embedding with `vocab` rows of `dim`.
    pub fn new(rng: &mut StdRng, vocab: usize, dim: usize) -> Self {
        Embedding {
            table: Param::new(init::normal(rng, &[vocab, dim], 0.5)),
            cached_indices: None,
            cached_in_shape: Vec::new(),
        }
    }

    /// Rebuilds an embedding from an existing table.
    pub fn from_parts(table: Tensor) -> Self {
        assert_eq!(table.shape().len(), 2, "embedding table must be [vocab, dim]");
        Embedding { table: Param::new(table), cached_indices: None, cached_in_shape: Vec::new() }
    }

    /// The `[vocab, dim]` table.
    pub fn table(&self) -> &Tensor {
        &self.table.value
    }

    fn index_of(table_rows: usize, v: f32) -> usize {
        let idx = v.round();
        assert!(
            idx >= 0.0 && (idx as usize) < table_rows,
            "embedding index {v} out of range 0..{table_rows}"
        );
        idx as usize
    }
}

impl Layer for Embedding {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Embedding expects [batch, time] of indices");
        let (b, t) = (x.shape()[0], x.shape()[1]);
        let (vocab, dim) = (self.table.value.shape()[0], self.table.value.shape()[1]);
        let indices: Vec<usize> = x.data().iter().map(|&v| Self::index_of(vocab, v)).collect();
        let mut y = Tensor::zeros(&[b, t, dim]);
        for (pos, &idx) in indices.iter().enumerate() {
            let dst = pos * dim;
            let src = idx * dim;
            y.data_mut()[dst..dst + dim].copy_from_slice(&self.table.value.data()[src..src + dim]);
        }
        if train {
            self.cached_indices = Some(indices);
            self.cached_in_shape = x.shape().to_vec();
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let indices = self.cached_indices.as_ref().expect("backward before forward");
        let dim = self.table.value.shape()[1];
        for (pos, &idx) in indices.iter().enumerate() {
            let src = pos * dim;
            let dst = idx * dim;
            for d in 0..dim {
                self.table.grad.data_mut()[dst + d] += grad_out.data()[src + d];
            }
        }
        // Indices are discrete; no gradient flows to them.
        Tensor::zeros(&self.cached_in_shape)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Embedding { table: self.table.value.clone() }
    }

    fn name(&self) -> &'static str {
        "Embedding"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_2x3() -> Embedding {
        Embedding::from_parts(Tensor::from_vec(vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0], &[2, 3]))
    }

    #[test]
    fn lookup_copies_rows() {
        let mut e = table_2x3();
        let x = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let y = e.forward(&x, false);
        assert_eq!(y.shape(), &[1, 2, 3]);
        assert_eq!(y.data(), &[10.0, 20.0, 30.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn backward_accumulates_into_rows() {
        let mut e = table_2x3();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let _ = e.forward(&x, true);
        let g = Tensor::ones(&[1, 2, 3]);
        let gx = e.backward(&g);
        assert_eq!(gx.shape(), &[1, 2]);
        // Row 1 referenced twice -> grad 2 per element; row 0 untouched.
        assert_eq!(e.table.grad.data(), &[0.0, 0.0, 0.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let mut e = table_2x3();
        let x = Tensor::from_vec(vec![5.0], &[1, 1]);
        let _ = e.forward(&x, false);
    }

    #[test]
    fn rounds_float_indices() {
        let mut e = table_2x3();
        let x = Tensor::from_vec(vec![0.9], &[1, 1]);
        let y = e.forward(&x, false);
        assert_eq!(y.data(), &[10.0, 20.0, 30.0]);
    }
}

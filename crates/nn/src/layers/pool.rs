//! Pooling layers over `[batch, ch, len]` tensors.

use super::{Layer, LayerSpec};
use crate::tensor::Tensor;

fn pool_out_len(len: usize, k: usize, stride: usize) -> usize {
    assert!(len >= k, "input length {len} shorter than pool window {k}");
    (len - k) / stride + 1
}

/// Max pooling with window `k` and the given stride.
pub struct MaxPool1d {
    k: usize,
    stride: usize,
    /// For each output element, the flat input index that won the max.
    argmax: Option<Vec<usize>>,
    in_shape: Vec<usize>,
}

impl MaxPool1d {
    /// Creates a max-pooling layer.
    pub fn new(k: usize, stride: usize) -> Self {
        assert!(k >= 1 && stride >= 1);
        MaxPool1d { k, stride, argmax: None, in_shape: Vec::new() }
    }
}

impl Layer for MaxPool1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "MaxPool1d expects [batch, ch, len]");
        let (b, c, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let ol = pool_out_len(l, self.k, self.stride);
        let mut y = Tensor::zeros(&[b, c, ol]);
        let mut argmax = vec![0usize; b * c * ol];
        for bi in 0..b {
            for ci in 0..c {
                for oi in 0..ol {
                    let start = oi * self.stride;
                    let mut best = f32::MIN;
                    let mut best_idx = 0;
                    for ki in 0..self.k {
                        let v = x.at3(bi, ci, start + ki);
                        if v > best {
                            best = v;
                            best_idx = (bi * c + ci) * l + start + ki;
                        }
                    }
                    *y.at3_mut(bi, ci, oi) = best;
                    argmax[(bi * c + ci) * ol + oi] = best_idx;
                }
            }
        }
        if train {
            self.argmax = Some(argmax);
            self.in_shape = x.shape().to_vec();
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("backward before forward");
        let mut gx = Tensor::zeros(&self.in_shape);
        for (i, &src) in argmax.iter().enumerate() {
            gx.data_mut()[src] += grad_out.data()[i];
        }
        gx
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::MaxPool1d { k: self.k, stride: self.stride }
    }

    fn name(&self) -> &'static str {
        "MaxPool1d"
    }
}

/// Average pooling with window `k` and the given stride.
pub struct AvgPool1d {
    k: usize,
    stride: usize,
    in_shape: Vec<usize>,
}

impl AvgPool1d {
    /// Creates an average-pooling layer.
    pub fn new(k: usize, stride: usize) -> Self {
        assert!(k >= 1 && stride >= 1);
        AvgPool1d { k, stride, in_shape: Vec::new() }
    }
}

impl Layer for AvgPool1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "AvgPool1d expects [batch, ch, len]");
        let (b, c, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let ol = pool_out_len(l, self.k, self.stride);
        let mut y = Tensor::zeros(&[b, c, ol]);
        for bi in 0..b {
            for ci in 0..c {
                for oi in 0..ol {
                    let start = oi * self.stride;
                    let mut acc = 0.0;
                    for ki in 0..self.k {
                        acc += x.at3(bi, ci, start + ki);
                    }
                    *y.at3_mut(bi, ci, oi) = acc / self.k as f32;
                }
            }
        }
        if train {
            self.in_shape = x.shape().to_vec();
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward before forward");
        let (b, c, _l) = (self.in_shape[0], self.in_shape[1], self.in_shape[2]);
        let ol = grad_out.shape()[2];
        let mut gx = Tensor::zeros(&self.in_shape);
        let inv_k = 1.0 / self.k as f32;
        for bi in 0..b {
            for ci in 0..c {
                for oi in 0..ol {
                    let g = grad_out.at3(bi, ci, oi) * inv_k;
                    let start = oi * self.stride;
                    for ki in 0..self.k {
                        *gx.at3_mut(bi, ci, start + ki) += g;
                    }
                }
            }
        }
        gx
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::AvgPool1d { k: self.k, stride: self.stride }
    }

    fn name(&self) -> &'static str {
        "AvgPool1d"
    }
}

/// Global max pooling: `[batch, ch, len] -> [batch, ch]` (the textcnn head).
#[derive(Default)]
pub struct GlobalMaxPool1d {
    argmax: Option<Vec<usize>>,
    in_shape: Vec<usize>,
}

impl GlobalMaxPool1d {
    /// Creates a global max-pooling layer.
    pub fn new() -> Self {
        GlobalMaxPool1d::default()
    }
}

impl Layer for GlobalMaxPool1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "GlobalMaxPool1d expects [batch, ch, len]");
        let (b, c, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut y = Tensor::zeros(&[b, c]);
        let mut argmax = vec![0usize; b * c];
        for bi in 0..b {
            for ci in 0..c {
                let mut best = f32::MIN;
                let mut best_idx = 0;
                for li in 0..l {
                    let v = x.at3(bi, ci, li);
                    if v > best {
                        best = v;
                        best_idx = (bi * c + ci) * l + li;
                    }
                }
                *y.at2_mut(bi, ci) = best;
                argmax[bi * c + ci] = best_idx;
            }
        }
        if train {
            self.argmax = Some(argmax);
            self.in_shape = x.shape().to_vec();
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("backward before forward");
        let mut gx = Tensor::zeros(&self.in_shape);
        for (i, &src) in argmax.iter().enumerate() {
            gx.data_mut()[src] += grad_out.data()[i];
        }
        gx
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::GlobalMaxPool1d
    }

    fn name(&self) -> &'static str {
        "GlobalMaxPool1d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_max() {
        let mut p = MaxPool1d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0], &[1, 1, 4]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[5.0, 3.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool1d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0], &[1, 1, 4]);
        let _ = p.forward(&x, true);
        let g = Tensor::from_vec(vec![10.0, 20.0], &[1, 1, 2]);
        let gx = p.backward(&g);
        assert_eq!(gx.data(), &[0.0, 10.0, 20.0, 0.0]);
    }

    #[test]
    fn avgpool_averages() {
        let mut p = AvgPool1d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 4]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[2.0, 6.0]);
    }

    #[test]
    fn avgpool_backward_spreads_evenly() {
        let mut p = AvgPool1d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 4]);
        let _ = p.forward(&x, true);
        let g = Tensor::from_vec(vec![4.0, 8.0], &[1, 1, 2]);
        let gx = p.backward(&g);
        assert_eq!(gx.data(), &[2.0, 2.0, 4.0, 4.0]);
    }

    #[test]
    fn global_maxpool_reduces_length_axis() {
        let mut p = GlobalMaxPool1d::new();
        let x = Tensor::from_vec(vec![1.0, 9.0, 2.0, -1.0, -5.0, -2.0], &[1, 2, 3]);
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[9.0, -1.0]);
    }

    #[test]
    fn overlapping_windows() {
        let mut p = MaxPool1d::new(3, 1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[1, 1, 5]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[3.0, 4.0, 5.0]);
    }
}

//! Batch normalization in feature mode (`[batch, feat]`) and channel mode
//! (`[batch, ch, len]`).

use super::{Layer, LayerSpec, Param};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which axis batch statistics are computed over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NormMode {
    /// Normalize each feature of a `[batch, feat]` tensor.
    Feature,
    /// Normalize each channel of a `[batch, ch, len]` tensor.
    Channel,
}

/// Batch normalization: `y = gamma * (x - mean) / sqrt(var + eps) + beta`.
///
/// At inference time the running statistics are folded into a per-feature
/// affine transform `y = a*x + b` — exactly the "element-wise linear
/// transform" form that Pegasus's Basic Primitive Fusion reorders (§4.3).
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    eps: f32,
    momentum: f32,
    mode: NormMode,
    frozen: bool,
    cache: Option<BnCache>,
}

enum BnCache {
    Batch {
        x_hat: Tensor,
        inv_std: Vec<f32>,
        batch_per_feature: usize,
    },
    /// Frozen forward: the layer acted as a fixed affine map.
    Frozen {
        scale: Vec<f32>,
    },
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `dim` features/channels.
    pub fn new(dim: usize, mode: NormMode) -> Self {
        BatchNorm1d {
            gamma: Param::new(Tensor::ones(&[dim])),
            beta: Param::new(Tensor::zeros(&[dim])),
            running_mean: Tensor::zeros(&[dim]),
            running_var: Tensor::ones(&[dim]),
            eps: 1e-5,
            momentum: 0.1,
            mode,
            frozen: false,
            cache: None,
        }
    }

    /// Rebuilds a layer from serialized parts.
    pub fn from_parts(
        gamma: Tensor,
        beta: Tensor,
        running_mean: Tensor,
        running_var: Tensor,
        eps: f32,
        mode: NormMode,
    ) -> Self {
        BatchNorm1d {
            gamma: Param::new(gamma),
            beta: Param::new(beta),
            running_mean,
            running_var,
            eps,
            momentum: 0.1,
            mode,
            frozen: false,
            cache: None,
        }
    }

    /// Inference-time affine coefficients `(scale, shift)` per feature:
    /// `y = scale*x + shift`. This is what the Pegasus compiler folds into
    /// mapping tables.
    pub fn inference_affine(&self) -> (Vec<f32>, Vec<f32>) {
        let dim = self.gamma.value.len();
        let mut scale = Vec::with_capacity(dim);
        let mut shift = Vec::with_capacity(dim);
        for i in 0..dim {
            let inv = 1.0 / (self.running_var.data()[i] + self.eps).sqrt();
            let s = self.gamma.value.data()[i] * inv;
            scale.push(s);
            shift.push(self.beta.value.data()[i] - s * self.running_mean.data()[i]);
        }
        (scale, shift)
    }

    fn dims(&self, x: &Tensor) -> (usize, usize, usize) {
        match self.mode {
            NormMode::Feature => {
                assert_eq!(x.shape().len(), 2, "Feature mode expects [batch, feat]");
                (x.shape()[0], x.shape()[1], 1)
            }
            NormMode::Channel => {
                assert_eq!(x.shape().len(), 3, "Channel mode expects [batch, ch, len]");
                (x.shape()[0], x.shape()[1], x.shape()[2])
            }
        }
    }

    /// Iterates `(flat_index, feature_index)` pairs for the layout.
    fn feature_of(&self, shape: &[usize], flat: usize) -> usize {
        match self.mode {
            NormMode::Feature => flat % shape[1],
            NormMode::Channel => (flat / shape[2]) % shape[1],
        }
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (_b, f, _l) = self.dims(x);
        assert_eq!(f, self.gamma.value.len(), "BatchNorm dim mismatch");
        let shape = x.shape().to_vec();

        if train && self.frozen {
            // Inference-time affine with a backward path; running stats
            // untouched — the transform the mapping tables bake in.
            let (scale, shift) = self.inference_affine();
            let mut y = x.clone();
            for (i, v) in y.data_mut().iter_mut().enumerate() {
                let fi = self.feature_of(&shape, i);
                *v = scale[fi] * *v + shift[fi];
            }
            self.cache = Some(BnCache::Frozen { scale });
            return y;
        }
        if train {
            // Batch statistics per feature.
            let mut sum = vec![0.0f64; f];
            let mut sum_sq = vec![0.0f64; f];
            let mut count = vec![0usize; f];
            for (i, &v) in x.data().iter().enumerate() {
                let fi = self.feature_of(&shape, i);
                sum[fi] += v as f64;
                sum_sq[fi] += (v as f64) * (v as f64);
                count[fi] += 1;
            }
            let mean: Vec<f32> = (0..f).map(|i| (sum[i] / count[i] as f64) as f32).collect();
            let var: Vec<f32> = (0..f)
                .map(|i| {
                    let m = sum[i] / count[i] as f64;
                    ((sum_sq[i] / count[i] as f64) - m * m).max(0.0) as f32
                })
                .collect();
            // Update running statistics.
            for i in 0..f {
                let rm = self.running_mean.data_mut();
                rm[i] = (1.0 - self.momentum) * rm[i] + self.momentum * mean[i];
                let rv = self.running_var.data_mut();
                rv[i] = (1.0 - self.momentum) * rv[i] + self.momentum * var[i];
            }
            let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
            let mut x_hat = x.clone();
            for (i, v) in x_hat.data_mut().iter_mut().enumerate() {
                let fi = self.feature_of(&shape, i);
                *v = (*v - mean[fi]) * inv_std[fi];
            }
            let mut y = x_hat.clone();
            for (i, v) in y.data_mut().iter_mut().enumerate() {
                let fi = self.feature_of(&shape, i);
                *v = self.gamma.value.data()[fi] * *v + self.beta.value.data()[fi];
            }
            let batch_per_feature = count[0];
            self.cache = Some(BnCache::Batch { x_hat, inv_std, batch_per_feature });
            y
        } else {
            let (scale, shift) = self.inference_affine();
            let mut y = x.clone();
            for (i, v) in y.data_mut().iter_mut().enumerate() {
                let fi = self.feature_of(&shape, i);
                *v = scale[fi] * *v + shift[fi];
            }
            y
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = grad_out.shape().to_vec();
        let f = self.gamma.value.len();
        let cache = self.cache.as_ref().expect("backward before forward");
        let (x_hat, inv_std, n) = match cache {
            BnCache::Frozen { scale } => {
                // Fixed affine: dx = g * scale.
                let mut gx = grad_out.clone();
                for (i, v) in gx.data_mut().iter_mut().enumerate() {
                    let fi = self.feature_of(&shape, i);
                    *v = grad_out.data()[i] * scale[fi];
                }
                return gx;
            }
            BnCache::Batch { x_hat, inv_std, batch_per_feature } => {
                (x_hat, inv_std, *batch_per_feature as f32)
            }
        };

        // Per-feature reductions of g and g*x_hat.
        let mut sum_g = vec![0.0f32; f];
        let mut sum_gx = vec![0.0f32; f];
        for (i, &g) in grad_out.data().iter().enumerate() {
            let fi = self.feature_of(&shape, i);
            sum_g[fi] += g;
            sum_gx[fi] += g * x_hat.data()[i];
        }
        for i in 0..f {
            self.gamma.grad.data_mut()[i] += sum_gx[i];
            self.beta.grad.data_mut()[i] += sum_g[i];
        }
        // dx = (gamma * inv_std / n) * (n*g - sum_g - x_hat * sum_gx)
        let mut gx = grad_out.clone();
        for (i, v) in gx.data_mut().iter_mut().enumerate() {
            let fi = self.feature_of(&shape, i);
            let g = grad_out.data()[i];
            let xh = x_hat.data()[i];
            *v = self.gamma.value.data()[fi] * inv_std[fi] / n
                * (n * g - sum_g[fi] - xh * sum_gx[fi]);
        }
        gx
    }

    fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::BatchNorm1d {
            gamma: self.gamma.value.clone(),
            beta: self.beta.value.clone(),
            running_mean: self.running_mean.clone(),
            running_var: self.running_var.clone(),
            eps: self.eps,
            mode: self.mode,
        }
    }

    fn name(&self) -> &'static str {
        "BatchNorm1d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_forward_normalizes() {
        let mut bn = BatchNorm1d::new(2, NormMode::Feature);
        let x = Tensor::from_vec(vec![1.0, 10.0, 3.0, 30.0, 5.0, 50.0], &[3, 2]);
        let y = bn.forward(&x, true);
        // Each column should now have ~zero mean, ~unit variance.
        for c in 0..2 {
            let col: Vec<f32> = (0..3).map(|r| y.at2(r, c)).collect();
            let mean: f32 = col.iter().sum::<f32>() / 3.0;
            let var: f32 = col.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1, NormMode::Feature);
        // Feed several batches to settle running stats near (2.0, 1.0).
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]);
        for _ in 0..200 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&Tensor::from_vec(vec![2.0], &[1, 1]), false);
        // x == running mean -> y ≈ beta == 0.
        assert!(y.data()[0].abs() < 0.05, "{}", y.data()[0]);
    }

    #[test]
    fn inference_affine_matches_eval_forward() {
        let mut bn = BatchNorm1d::new(2, NormMode::Feature);
        let x = Tensor::from_vec(vec![1.0, -5.0, 2.0, 0.0, 4.0, 5.0], &[3, 2]);
        let _ = bn.forward(&x, true);
        let (scale, shift) = bn.inference_affine();
        let probe = Tensor::from_vec(vec![1.5, 2.5], &[1, 2]);
        let y = bn.forward(&probe, false);
        for c in 0..2 {
            let expect = scale[c] * probe.at2(0, c) + shift[c];
            assert!((y.at2(0, c) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn channel_mode_normalizes_per_channel() {
        let mut bn = BatchNorm1d::new(2, NormMode::Channel);
        // [1 batch, 2 ch, 4 len]
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[1, 2, 4]);
        let y = bn.forward(&x, true);
        for ch in 0..2 {
            let vals: Vec<f32> = (0..4).map(|l| y.at3(0, ch, l)).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn backward_gradcheck_feature_mode() {
        let mut bn = BatchNorm1d::new(2, NormMode::Feature);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 3.0, -0.5, 1.0], &[3, 2]);
        let _y = bn.forward(&x, true);
        let g = Tensor::ones(&[3, 2]);
        let gx = bn.backward(&g);
        // Sum of dL/dx over the batch must be ~0 for constant upstream grad
        // (normalization removes the mean direction).
        let s = gx.sum_axis0();
        assert!(s.data().iter().all(|&v| v.abs() < 1e-4), "{:?}", s);
    }

    #[test]
    fn gamma_beta_gradients_accumulate() {
        let mut bn = BatchNorm1d::new(1, NormMode::Feature);
        let x = Tensor::from_vec(vec![1.0, 3.0], &[2, 1]);
        let _ = bn.forward(&x, true);
        let g = Tensor::ones(&[2, 1]);
        let _ = bn.backward(&g);
        // beta grad = sum of upstream grads = 2.
        assert!((bn.beta.grad.data()[0] - 2.0).abs() < 1e-6);
        // gamma grad = sum(g * x_hat) ≈ 0 for symmetric input.
        assert!(bn.gamma.grad.data()[0].abs() < 1e-4);
    }
}

//! Elman recurrent layer with windowed backpropagation through time.
//!
//! The paper's RNN-B follows BoS's *windowed* RNN design: a fixed number of
//! time steps is processed per inference with no hidden-state write-back to
//! switch memory (§6.3). The training-side layer here unrolls exactly that
//! window: `h_t = tanh(x_t Wx + h_{t-1} Wh + b)`, returning the final hidden
//! state.

use super::{Layer, LayerSpec, Param};
use crate::init;
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Elman RNN over `[batch, time, feat]`, returning `[batch, hidden]`.
pub struct Rnn {
    wx: Param,
    wh: Param,
    bias: Param,
    cache: Option<RnnCache>,
}

struct RnnCache {
    /// Input per step: `time` tensors of `[batch, feat]`.
    xs: Vec<Tensor>,
    /// Hidden state per step *after* tanh: `time` tensors of `[batch, hidden]`.
    hs: Vec<Tensor>,
}

impl Rnn {
    /// Creates an RNN layer with Xavier-initialized weights.
    pub fn new(rng: &mut StdRng, feat: usize, hidden: usize) -> Self {
        Rnn {
            wx: Param::new(init::xavier(rng, &[feat, hidden])),
            wh: Param::new(init::xavier(rng, &[hidden, hidden])),
            bias: Param::new(Tensor::zeros(&[hidden])),
            cache: None,
        }
    }

    /// Rebuilds an RNN from existing weights.
    pub fn from_parts(wx: Tensor, wh: Tensor, bias: Tensor) -> Self {
        assert_eq!(wx.shape().len(), 2);
        assert_eq!(wh.shape().len(), 2);
        assert_eq!(wh.shape()[0], wh.shape()[1], "Wh must be square");
        assert_eq!(wx.shape()[1], wh.shape()[0], "Wx out dim must match hidden");
        Rnn { wx: Param::new(wx), wh: Param::new(wh), bias: Param::new(bias), cache: None }
    }

    /// Input-to-hidden weights `[feat, hidden]`.
    pub fn wx(&self) -> &Tensor {
        &self.wx.value
    }

    /// Hidden-to-hidden weights `[hidden, hidden]`.
    pub fn wh(&self) -> &Tensor {
        &self.wh.value
    }

    /// Bias `[hidden]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    fn hidden(&self) -> usize {
        self.wh.value.shape()[0]
    }
}

impl Layer for Rnn {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "Rnn expects [batch, time, feat]");
        let (b, t, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert_eq!(f, self.wx.value.shape()[0], "feature dim mismatch");
        let h_dim = self.hidden();

        let mut h = Tensor::zeros(&[b, h_dim]);
        let mut xs = Vec::with_capacity(t);
        let mut hs = Vec::with_capacity(t);
        for ti in 0..t {
            // Slice step ti: [batch, feat].
            let mut xt = Tensor::zeros(&[b, f]);
            for bi in 0..b {
                for fi in 0..f {
                    *xt.at2_mut(bi, fi) = x.at3(bi, ti, fi);
                }
            }
            let pre = xt
                .matmul(&self.wx.value)
                .add(&h.matmul(&self.wh.value))
                .add_row_broadcast(&self.bias.value);
            h = pre.map(f32::tanh);
            if train {
                xs.push(xt);
                hs.push(h.clone());
            }
        }
        if train {
            self.cache = Some(RnnCache { xs, hs });
        }
        h
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let t = cache.xs.len();
        let (b, f) = (cache.xs[0].shape()[0], cache.xs[0].shape()[1]);
        let mut gx = Tensor::zeros(&[b, t, f]);
        // Gradient flowing into h_t (from the output at t = T-1, then
        // recurrently from step t+1).
        let mut gh = grad_out.clone();
        for ti in (0..t).rev() {
            let h_t = &cache.hs[ti];
            // Through tanh: g_pre = gh * (1 - h^2).
            let g_pre = gh.zip_map(h_t, |g, h| g * (1.0 - h * h));
            // Parameter grads.
            self.wx.grad.add_assign(&cache.xs[ti].t().matmul(&g_pre));
            let h_prev =
                if ti == 0 { Tensor::zeros(&[b, self.hidden()]) } else { cache.hs[ti - 1].clone() };
            self.wh.grad.add_assign(&h_prev.t().matmul(&g_pre));
            self.bias.grad.add_assign(&g_pre.sum_axis0());
            // Input grad for this step.
            let gxt = g_pre.matmul(&self.wx.value.t());
            for bi in 0..b {
                for fi in 0..f {
                    *gx.at3_mut(bi, ti, fi) = gxt.at2(bi, fi);
                }
            }
            // Recurrent grad to previous hidden state.
            gh = g_pre.matmul(&self.wh.value.t());
        }
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.bias]
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Rnn {
            wx: self.wx.value.clone(),
            wh: self.wh.value.clone(),
            bias: self.bias.value.clone(),
        }
    }

    fn name(&self) -> &'static str {
        "Rnn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    #[test]
    fn single_step_equals_dense_tanh() {
        let wx = Tensor::from_vec(vec![1.0, 0.5], &[1, 2]);
        let wh = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2]);
        let mut r = Rnn::from_parts(wx, wh, b);
        let x = Tensor::from_vec(vec![0.3], &[1, 1, 1]);
        let y = r.forward(&x, false);
        assert!((y.at2(0, 0) - 0.3f32.tanh()).abs() < 1e-6);
        assert!((y.at2(0, 1) - 0.15f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn hidden_state_carries_across_steps() {
        // Wx = 1, Wh = 1, identity-ish 1-d RNN: h2 = tanh(x2 + tanh(x1)).
        let wx = Tensor::from_vec(vec![1.0], &[1, 1]);
        let wh = Tensor::from_vec(vec![1.0], &[1, 1]);
        let b = Tensor::zeros(&[1]);
        let mut r = Rnn::from_parts(wx, wh, b);
        let x = Tensor::from_vec(vec![0.5, 0.2], &[1, 2, 1]);
        let y = r.forward(&x, false);
        let expect = (0.2f32 + 0.5f32.tanh()).tanh();
        assert!((y.at2(0, 0) - expect).abs() < 1e-6);
    }

    #[test]
    fn bptt_gradcheck() {
        let mut rr = rng(13);
        let mut r = Rnn::new(&mut rr, 2, 3);
        let x = init::normal(&mut rr, &[2, 4, 2], 1.0);
        let y = r.forward(&x, true);
        let g = Tensor::ones(y.shape());
        let _ = r.backward(&g);
        let analytic = r.wx.grad.clone();
        let eps = 1e-2_f32;
        for idx in 0..analytic.len() {
            let orig = r.wx.value.data()[idx];
            r.wx.value.data_mut()[idx] = orig + eps;
            let lp = r.forward(&x, false).sum();
            r.wx.value.data_mut()[idx] = orig - eps;
            let lm = r.forward(&x, false).sum();
            r.wx.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[idx]).abs() < 0.03,
                "idx {idx}: numeric {numeric} vs analytic {}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn input_gradcheck() {
        let mut rr = rng(14);
        let mut r = Rnn::new(&mut rr, 2, 2);
        let x = init::normal(&mut rr, &[1, 3, 2], 1.0);
        let y = r.forward(&x, true);
        let g = Tensor::ones(y.shape());
        let gx = r.backward(&g);
        let eps = 1e-2_f32;
        let mut xp = x.clone();
        for idx in 0..x.len() {
            let orig = xp.data()[idx];
            xp.data_mut()[idx] = orig + eps;
            let lp = r.forward(&xp, false).sum();
            xp.data_mut()[idx] = orig - eps;
            let lm = r.forward(&xp, false).sum();
            xp.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[idx]).abs() < 0.03,
                "idx {idx}: numeric {numeric} vs analytic {}",
                gx.data()[idx]
            );
        }
    }
}

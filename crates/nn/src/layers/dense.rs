//! Fully connected layers: full-precision [`Dense`] and sign-binarized
//! [`BinaryDense`] (the N3IC substrate, trained with a straight-through
//! estimator).

use super::{Layer, LayerSpec, Param};
use crate::init;
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Fully connected layer: `y = x W + b` with `W: [in, out]`.
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a Xavier-initialized dense layer.
    pub fn new(rng: &mut StdRng, in_dim: usize, out_dim: usize) -> Self {
        Dense {
            weight: Param::new(init::xavier(rng, &[in_dim, out_dim])),
            bias: Param::new(Tensor::zeros(&[out_dim])),
            cached_input: None,
        }
    }

    /// Rebuilds a layer from existing weights.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().len(), 2);
        assert_eq!(bias.len(), weight.shape()[1]);
        Dense { weight: Param::new(weight), bias: Param::new(bias), cached_input: None }
    }

    /// The `[in, out]` weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The `[out]` bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Dense expects [batch, features]");
        if train {
            self.cached_input = Some(x.clone());
        }
        x.matmul(&self.weight.value).add_row_broadcast(&self.bias.value)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        // dW = x^T g ; db = sum_rows(g) ; dx = g W^T
        self.weight.grad.add_assign(&x.t().matmul(grad_out));
        self.bias.grad.add_assign(&grad_out.sum_axis0());
        grad_out.matmul(&self.weight.value.t())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Dense { weight: self.weight.value.clone(), bias: self.bias.value.clone() }
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

/// Fully connected layer whose weights are binarized to `{-1, +1}` in the
/// forward pass while latent full-precision weights receive the gradients
/// (straight-through estimator).
///
/// This is the training-side counterpart of N3IC's XNOR+popcnt MatMul: once
/// trained, the sign of each latent weight is what gets deployed, and
/// `pegasus-baselines` proves the XNOR+popcnt evaluation bit-exact against
/// this layer's binarized forward pass.
pub struct BinaryDense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

/// Sign with `sign(0) = +1`, matching XNOR-net conventions.
#[inline]
pub fn sign_pm1(x: f32) -> f32 {
    if x < 0.0 {
        -1.0
    } else {
        1.0
    }
}

impl BinaryDense {
    /// Creates a binary dense layer with Xavier-initialized latent weights.
    pub fn new(rng: &mut StdRng, in_dim: usize, out_dim: usize) -> Self {
        BinaryDense {
            weight: Param::new(init::xavier(rng, &[in_dim, out_dim])),
            bias: Param::new(Tensor::zeros(&[out_dim])),
            cached_input: None,
        }
    }

    /// Rebuilds a layer from existing latent weights.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        BinaryDense { weight: Param::new(weight), bias: Param::new(bias), cached_input: None }
    }

    /// The binarized (`{-1,+1}`) weight matrix actually used in forward.
    pub fn binary_weight(&self) -> Tensor {
        self.weight.value.map(sign_pm1)
    }

    /// The `[out]` bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }
}

impl Layer for BinaryDense {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "BinaryDense expects [batch, features]");
        if train {
            self.cached_input = Some(x.clone());
        }
        x.matmul(&self.binary_weight()).add_row_broadcast(&self.bias.value)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let wb = self.binary_weight();
        // Straight-through estimator: gradient w.r.t. the binary weight is
        // passed to the latent weight, clipped where |w| > 1 to keep the
        // latent values bounded (Courbariaux et al.).
        let raw_grad = x.t().matmul(grad_out);
        let clip_mask = self.weight.value.map(|w| if w.abs() <= 1.0 { 1.0 } else { 0.0 });
        self.weight.grad.add_assign(&raw_grad.mul(&clip_mask));
        self.bias.grad.add_assign(&grad_out.sum_axis0());
        grad_out.matmul(&wb.t())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::BinaryDense { weight: self.weight.value.clone(), bias: self.bias.value.clone() }
    }

    fn name(&self) -> &'static str {
        "BinaryDense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    #[test]
    fn dense_forward_matches_manual() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_slice(&[0.5, -0.5]);
        let mut d = Dense::from_parts(w, b);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = d.forward(&x, false);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn dense_backward_shapes_and_values() {
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let b = Tensor::zeros(&[2]);
        let mut d = Dense::from_parts(w, b);
        let x = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]);
        let _ = d.forward(&x, true);
        let g = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let gx = d.backward(&g);
        // dx = g W^T = [1,1] for identity W.
        assert_eq!(gx.data(), &[1.0, 1.0]);
        // dW = x^T g = [[2,2],[3,3]]
        assert_eq!(d.weight.grad.data(), &[2.0, 2.0, 3.0, 3.0]);
        assert_eq!(d.bias.grad.data(), &[1.0, 1.0]);
    }

    /// Finite-difference check of the dense layer gradient.
    #[test]
    fn dense_gradcheck() {
        let mut r = rng(11);
        let mut d = Dense::new(&mut r, 3, 2);
        let x = init::normal(&mut r, &[4, 3], 1.0);
        // Loss = sum(forward(x)); dL/dy = ones.
        let y = d.forward(&x, true);
        let g = Tensor::ones(y.shape());
        let _ = d.backward(&g);
        let analytic = d.weight.grad.clone();
        let eps = 1e-3_f32;
        for idx in [0usize, 3, 5] {
            let orig = d.weight.value.data()[idx];
            d.weight.value.data_mut()[idx] = orig + eps;
            let lp = d.forward(&x, false).sum();
            d.weight.value.data_mut()[idx] = orig - eps;
            let lm = d.forward(&x, false).sum();
            d.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[idx]).abs() < 2e-2,
                "idx {idx}: numeric {numeric} vs analytic {}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn binary_dense_uses_sign_weights() {
        let w = Tensor::from_vec(vec![0.3, -0.7, -0.1, 0.9], &[2, 2]);
        let b = Tensor::zeros(&[2]);
        let mut d = BinaryDense::from_parts(w, b);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = d.forward(&x, false);
        // signs: [[+1,-1],[-1,+1]] -> y = [0, 0]
        assert_eq!(y.data(), &[0.0, 0.0]);
    }

    #[test]
    fn binary_dense_ste_clips_large_weights() {
        let w = Tensor::from_vec(vec![2.0, -0.5], &[1, 2]);
        let b = Tensor::zeros(&[2]);
        let mut d = BinaryDense::from_parts(w, b);
        let x = Tensor::from_vec(vec![1.0], &[1, 1]);
        let _ = d.forward(&x, true);
        let g = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let _ = d.backward(&g);
        // |2.0| > 1 -> gradient zeroed; |-0.5| <= 1 -> gradient flows.
        assert_eq!(d.weight.grad.data()[0], 0.0);
        assert_eq!(d.weight.grad.data()[1], 1.0);
    }

    #[test]
    fn sign_of_zero_is_positive() {
        assert_eq!(sign_pm1(0.0), 1.0);
        assert_eq!(sign_pm1(-0.0), 1.0);
    }
}

//! Minimal stand-in for the subset of the `bytes` crate this workspace
//! uses, vendored for offline builds.
//!
//! [`Bytes`] is a cheaply cloneable immutable byte buffer (`Arc<[u8]>`
//! underneath, so clones share storage like the real crate); [`BytesMut`] is
//! a growable builder with the big-endian `put_*` writers from [`BufMut`].
//! Only the calls the packet builder/parser make are implemented.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

/// Big-endian byte writers, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Growable byte buffer builder.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x04050607);
        b.put_slice(&[8, 9]);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        b[0] = 0xff;
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 9);
        assert_eq!(frozen[0], 0xff);
        let again = frozen.clone();
        assert_eq!(again, frozen);
    }

    #[test]
    fn copy_from_slice_owns() {
        let v = vec![1u8, 2, 3];
        let b = Bytes::copy_from_slice(&v);
        drop(v);
        assert_eq!(&b[..], &[1, 2, 3]);
    }
}

//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! This workspace builds in a hermetic environment without access to
//! crates.io, so `serde` is vendored as a minimal stand-in (see
//! `crates/compat/serde`). Nothing in the workspace serializes at runtime —
//! the derives exist so data structures stay annotated for the day a real
//! serialization backend is swapped in. The macros accept (and ignore)
//! `#[serde(...)]` helper attributes.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Accepts the annotated item and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the annotated item and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Deterministic stand-in for the subset of the `rand` API this workspace
//! uses, vendored for offline builds.
//!
//! All randomness in the Pegasus reproduction flows through seeded
//! [`rngs::StdRng`] instances, so the only contract that matters is
//! *determinism per seed*, not any particular stream. The generator here is
//! xoshiro256++ seeded via SplitMix64 — fast, well distributed, and entirely
//! self-contained. The API mirrors `rand 0.8` for the calls the workspace
//! makes: `StdRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges (half-open and inclusive), `Rng::gen::<T>()`, and
//! `seq::SliceRandom::shuffle`.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce.
pub trait StandardSample {
    /// Converts 64 random bits into a sample.
    fn from_bits(bits: u64) -> Self;
}

impl StandardSample for f32 {
    fn from_bits(bits: u64) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (bits >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for f64 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for u8 {
    fn from_bits(bits: u64) -> Self {
        bits as u8
    }
}

impl StandardSample for u32 {
    fn from_bits(bits: u64) -> Self {
        bits as u32
    }
}

impl StandardSample for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl StandardSample for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Types `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi]` from 64 random bits.
    fn sample_inclusive(lo: Self, hi: Self, bits: u64) -> Self;
    /// The value immediately below `hi` (to turn `lo..hi` into `[lo, hi-ulp]`
    /// for integers; floats treat both range kinds identically).
    fn dec(hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(lo: Self, hi: Self, bits: u64) -> Self {
                debug_assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                // Widening multiply keeps the mapping effectively unbiased.
                let off = ((bits as u128).wrapping_mul(span as u128) >> 64) as i128;
                (lo as i128 + off) as $t
            }
            fn dec(hi: Self) -> Self {
                hi - 1
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(lo: Self, hi: Self, bits: u64) -> Self {
                let f = <$t as StandardSample>::from_bits(bits);
                lo + f * (hi - lo)
            }
            fn dec(hi: Self) -> Self {
                hi // half-open and closed float ranges sample identically
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Range forms `gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples the range using the given bit source.
    fn sample(self, bits: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, bits: u64) -> T {
        T::sample_inclusive(self.start, T::dec(self.end), bits)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, bits: u64) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, bits)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    /// A sample of the "standard" distribution for `T` (floats in `[0, 1)`,
    /// integers over their full range).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A biased coin flip.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace-standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| {
                let mut a2 = a.clone();
                a2.gen_range(0..u64::MAX) == c.gen_range(0..u64::MAX)
            })
            .count();
        assert!(same < 100, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(5..=5);
            assert_eq!(i, 5);
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn covers_full_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>(), "32! makes identity vanishingly unlikely");
    }
}

//! Minimal stand-in for the `serde` facade, vendored for offline builds.
//!
//! The workspace annotates its data structures with
//! `#[derive(Serialize, Deserialize)]` but never serializes at runtime, so
//! this crate only has to make the annotations compile: the derive macros
//! (re-exported from the sibling `serde_derive` stub) expand to nothing, and
//! the marker traits below exist so `use serde::{Serialize, Deserialize}`
//! keeps resolving in type position. Swapping in the real `serde` is a
//! one-line change in the workspace manifest.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}

//! Minimal stand-in for the `serde` facade, vendored for offline builds —
//! now with a real wire format.
//!
//! Earlier revisions of this crate were pure markers: the derive macros
//! (re-exported from the sibling `serde_derive` stub) expand to nothing
//! and the traits had no methods, so `#[derive(Serialize, Deserialize)]`
//! annotations compiled without pulling the real `serde` into an offline
//! build. The control daemon (`crates/ctl`) needs actual bytes on a
//! socket and on disk, so the traits now carry one method each over a
//! tiny, self-describing-free binary encoding:
//!
//! * integers are fixed-width **little-endian** (`usize` travels as
//!   `u64`), floats as their IEEE-754 bit patterns (bit-exact round
//!   trips, no NaN canonicalization);
//! * `bool` and `Option` are one tag byte (anything other than 0/1 is a
//!   typed decode error, not a panic);
//! * strings, vectors and maps are a `u32` element count followed by the
//!   elements — the count is bounds-checked against the bytes actually
//!   remaining, so a hostile length prefix cannot drive a huge
//!   allocation;
//! * enums are a `u8` discriminant written by hand-rolled impls in the
//!   crates that own them.
//!
//! The derive macros still expand to nothing: every serializable type
//! writes its impl by hand (private fields mean the impl must live in
//! the defining module anyway), most via [`impl_serde_struct!`]. Because
//! the derives emit no code, manual impls never conflict with the
//! existing `#[derive(Serialize, Deserialize)]` annotations.
//! Deserialization never panics: malformed input surfaces as a
//! [`DecodeError`].
//!
//! Swapping in the real `serde` remains a workspace-manifest change plus
//! replacing the hand impls with the derives that are already in place.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// Why a byte buffer failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value did.
    Eof {
        /// What was being decoded.
        what: &'static str,
        /// Bytes the value needed.
        needed: usize,
        /// Bytes left in the buffer.
        remaining: usize,
    },
    /// A discriminant byte (enum tag, bool, `Option` marker) holds a
    /// value the type has no arm for.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length prefix promises more elements than the remaining bytes
    /// could possibly hold.
    BadLength {
        /// The collection being decoded.
        what: &'static str,
        /// The claimed element count.
        len: usize,
        /// Bytes left in the buffer.
        remaining: usize,
    },
    /// String bytes are not valid UTF-8.
    Utf8,
    /// [`from_bytes`] decoded a complete value but bytes were left over.
    TrailingBytes {
        /// Undecoded bytes after the value.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Eof { what, needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input decoding {what}: need {needed} bytes, {remaining} left"
                )
            }
            DecodeError::BadTag { what, tag } => {
                write!(f, "invalid discriminant {tag:#04x} for {what}")
            }
            DecodeError::BadLength { what, len, remaining } => {
                write!(f, "length prefix {len} for {what} exceeds the {remaining} bytes remaining")
            }
            DecodeError::Utf8 => write!(f, "string bytes are not valid UTF-8"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Byte-buffer sink values serialize into.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far, borrowed.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append one raw byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes verbatim (no length prefix).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32` element-count prefix. Counts beyond `u32::MAX`
    /// cannot occur for in-memory collections on supported targets, but
    /// saturate defensively rather than truncate silently.
    pub fn write_len(&mut self, len: usize) {
        self.write_u32(u32::try_from(len).unwrap_or(u32::MAX));
    }
}

/// Cursor over a borrowed byte buffer values deserialize from.
#[derive(Debug)]
pub struct Reader<'de> {
    buf: &'de [u8],
    pos: usize,
}

impl<'de> Reader<'de> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'de [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'de [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Eof { what, needed: n, remaining: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one raw byte.
    pub fn read_u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn read_u16(&mut self, what: &'static str) -> Result<u16, DecodeError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize, what: &'static str) -> Result<&'de [u8], DecodeError> {
        self.take(n, what)
    }

    /// Read a `u32` element count and sanity-check it against the bytes
    /// remaining (every element of every supported type occupies at
    /// least one byte, so a count beyond `remaining` is corrupt and must
    /// not reach an allocator).
    pub fn read_len(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        let len = self.read_u32(what)? as usize;
        if len > self.remaining() {
            return Err(DecodeError::BadLength { what, len, remaining: self.remaining() });
        }
        Ok(len)
    }
}

/// Types that can write themselves into a [`Writer`].
pub trait Serialize {
    /// Append this value's encoding.
    fn serialize(&self, w: &mut Writer);
}

/// Types that can read themselves back out of a [`Reader`].
pub trait Deserialize<'de>: Sized {
    /// Decode one value, advancing the reader past it.
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError>;
}

/// Encode a value to a fresh byte vector.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.serialize(&mut w);
    w.into_bytes()
}

/// Decode exactly one value from a buffer; trailing bytes are an error.
pub fn from_bytes<'de, T: Deserialize<'de>>(bytes: &'de [u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(bytes);
    let value = T::deserialize(&mut r)?;
    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes { remaining: r.remaining() });
    }
    Ok(value)
}

// --- primitive impls ---------------------------------------------------

macro_rules! impl_int {
    ($($ty:ty => $write:ident / $read:ident / $tag:literal),+ $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize(&self, w: &mut Writer) {
                    w.$write(*self);
                }
            }
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError> {
                    r.$read($tag)
                }
            }
        )+
    };
}

impl_int! {
    u8 => write_u8 / read_u8 / "u8",
    u16 => write_u16 / read_u16 / "u16",
    u32 => write_u32 / read_u32 / "u32",
    u64 => write_u64 / read_u64 / "u64",
}

macro_rules! impl_via_bits {
    ($($ty:ty => $carrier:ty, $to:ident, $from:ident;)+) => {
        $(
            impl Serialize for $ty {
                fn serialize(&self, w: &mut Writer) {
                    <$carrier as Serialize>::serialize(&self.$to(), w);
                }
            }
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError> {
                    Ok(<$ty>::$from(<$carrier as Deserialize>::deserialize(r)?))
                }
            }
        )+
    };
}

impl_via_bits! {
    f32 => u32, to_bits, from_bits;
    f64 => u64, to_bits, from_bits;
}

macro_rules! impl_signed {
    ($($ty:ty => $carrier:ty),+ $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize(&self, w: &mut Writer) {
                    <$carrier as Serialize>::serialize(&(*self as $carrier), w);
                }
            }
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError> {
                    Ok(<$carrier as Deserialize>::deserialize(r)? as $ty)
                }
            }
        )+
    };
}

impl_signed! {
    i8 => u8,
    i16 => u16,
    i32 => u32,
    i64 => u64,
}

impl Serialize for usize {
    fn serialize(&self, w: &mut Writer) {
        w.write_u64(*self as u64);
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError> {
        let v = r.read_u64("usize")?;
        let remaining = r.remaining();
        usize::try_from(v).map_err(|_| DecodeError::BadLength {
            what: "usize",
            len: usize::MAX,
            remaining,
        })
    }
}

impl Serialize for bool {
    fn serialize(&self, w: &mut Writer) {
        w.write_u8(u8::from(*self));
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError> {
        match r.read_u8("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what: "bool", tag }),
        }
    }
}

impl Serialize for String {
    fn serialize(&self, w: &mut Writer) {
        self.as_str().serialize(w);
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError> {
        let len = r.read_len("string")?;
        let bytes = r.read_bytes(len, "string")?;
        std::str::from_utf8(bytes).map(str::to_owned).map_err(|_| DecodeError::Utf8)
    }
}

impl Serialize for str {
    fn serialize(&self, w: &mut Writer) {
        w.write_len(self.len());
        w.write_bytes(self.as_bytes());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, w: &mut Writer) {
        (*self).serialize(w);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, w: &mut Writer) {
        match self {
            None => w.write_u8(0),
            Some(v) => {
                w.write_u8(1);
                v.serialize(w);
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError> {
        match r.read_u8("option")? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(r)?)),
            tag => Err(DecodeError::BadTag { what: "option", tag }),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self, w: &mut Writer) {
        self.as_ref().serialize(w);
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError> {
        Ok(Box::new(T::deserialize(r)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, w: &mut Writer) {
        w.write_len(self.len());
        for item in self {
            item.serialize(w);
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError> {
        let len = r.read_len("vec")?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::deserialize(r)?);
        }
        Ok(out)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, w: &mut Writer) {
        for item in self {
            item.serialize(w);
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::deserialize(r)?);
        }
        // Infallible: the loop above pushed exactly N elements.
        out.try_into().map_err(|_| DecodeError::BadTag { what: "array", tag: 0 })
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self, w: &mut Writer) {
        w.write_len(self.len());
        for (k, v) in self {
            k.serialize(w);
            v.serialize(w);
        }
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError> {
        let len = r.read_len("map")?;
        let mut out = HashMap::with_capacity_and_hasher(len, S::default());
        for _ in 0..len {
            let k = K::deserialize(r)?;
            let v = V::deserialize(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize(&self, w: &mut Writer) {
                    $( self.$idx.serialize(w); )+
                }
            }
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn deserialize(r: &mut Reader<'de>) -> Result<Self, DecodeError> {
                    Ok(($($name::deserialize(r)?,)+))
                }
            }
        )+
    };
}

impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
}

/// Generate field-by-field [`Serialize`]/[`Deserialize`] impls for a
/// struct with named fields. Invoke it **inside the module that defines
/// the struct** so private fields are in scope:
///
/// ```
/// struct Point {
///     x: i64,
///     y: i64,
/// }
/// serde::impl_serde_struct!(Point { x, y });
///
/// let bytes = serde::to_bytes(&Point { x: 3, y: -4 });
/// let back: Point = serde::from_bytes(&bytes).unwrap();
/// assert_eq!((back.x, back.y), (3, -4));
/// ```
///
/// Fields encode in the order listed; list every field (the decoder
/// builds the struct with exactly these). Enums and structs that need to
/// skip or reconstruct fields write their impls by hand.
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn serialize(&self, w: &mut $crate::Writer) {
                $( $crate::Serialize::serialize(&self.$field, w); )+
            }
        }
        impl<'de> $crate::Deserialize<'de> for $ty {
            fn deserialize(
                r: &mut $crate::Reader<'de>,
            ) -> Result<Self, $crate::DecodeError> {
                $( let $field = $crate::Deserialize::deserialize(r)?; )+
                Ok(Self { $($field),+ })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(value: T)
    where
        T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug,
    {
        let bytes = to_bytes(&value);
        let back: T = from_bytes(&bytes).expect("round trip decodes");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0xabu8);
        round_trip(0xdeadu16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(i64::MIN);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(1.5f32);
        round_trip(-0.0f64);
        round_trip(String::from("pegasus"));
        round_trip(String::new());
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        let nan = f32::from_bits(0x7fc0_0001);
        let bytes = to_bytes(&nan);
        let back: f32 = from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(Some(7i64));
        round_trip(Option::<String>::None);
        round_trip([5u64; 64]);
        round_trip((1u32, String::from("x"), -9i64));
        let mut map = HashMap::new();
        map.insert(String::from("a"), vec![1u8, 2]);
        map.insert(String::from("b"), vec![]);
        round_trip(map);
    }

    #[test]
    fn struct_macro_round_trips() {
        #[derive(Debug, PartialEq)]
        struct Sample {
            id: u32,
            name: String,
            weights: Vec<i64>,
        }
        impl_serde_struct!(Sample { id, name, weights });
        let s = Sample { id: 9, name: "t".into(), weights: vec![-1, 0, 7] };
        let bytes = to_bytes(&s);
        assert_eq!(from_bytes::<Sample>(&bytes).unwrap(), s);
    }

    #[test]
    fn truncated_input_is_a_typed_eof() {
        let bytes = to_bytes(&0xdead_beefu32);
        let err = from_bytes::<u32>(&bytes[..2]).unwrap_err();
        assert!(matches!(err, DecodeError::Eof { needed: 4, remaining: 2, .. }));
    }

    #[test]
    fn bad_tags_are_typed() {
        assert!(matches!(
            from_bytes::<bool>(&[9]).unwrap_err(),
            DecodeError::BadTag { what: "bool", tag: 9 }
        ));
        assert!(matches!(
            from_bytes::<Option<u8>>(&[7]).unwrap_err(),
            DecodeError::BadTag { what: "option", tag: 7 }
        ));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        // Claims u32::MAX elements with 0 bytes of payload behind it.
        let bytes = u32::MAX.to_le_bytes();
        let err = from_bytes::<Vec<u64>>(&bytes).unwrap_err();
        assert!(matches!(err, DecodeError::BadLength { what: "vec", .. }));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&5u8);
        bytes.push(0);
        assert_eq!(
            from_bytes::<u8>(&bytes).unwrap_err(),
            DecodeError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn utf8_is_validated() {
        let mut w = Writer::new();
        w.write_len(2);
        w.write_bytes(&[0xff, 0xfe]);
        assert_eq!(from_bytes::<String>(&w.into_bytes()).unwrap_err(), DecodeError::Utf8);
    }
}

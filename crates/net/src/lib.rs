//! # pegasus-net — packet and flow substrate
//!
//! Everything between raw bytes and model features:
//!
//! * [`packet`]: Ethernet/IPv4/TCP/UDP construction and parsing with real
//!   checksums (the trace generator emits byte-exact frames);
//! * [`flow`]: five-tuple flow identification and per-flow state — the
//!   host-side mirror of the switch's stateful registers;
//! * [`features`]: the three feature families the paper evaluates with —
//!   128-bit statistical vectors, 128-bit packet sequences, and CNN-L's
//!   3840-bit raw-byte windows;
//! * [`replay`]: deterministic timestamp-ordered trace replay with optional
//!   fault injection, standing in for the paper's tcpreplay testbed server;
//! * [`router`]: five-tuple match predicates for multi-tenant packet
//!   routing — how a serving engine steers traffic to the right model;
//! * [`wire`]: the zero-copy, panic-free wire-format frontend —
//!   Ethernet II (+ one 802.1Q tag), IPv4/IPv6, TCP/UDP — that turns raw
//!   frame bytes into flow identity and payload without allocating;
//! * [`pcap`]: classic pcap capture files (both endiannesses, snaplen
//!   truncation) read as [`FrameSource`]/[`PacketSource`] streams and
//!   written back byte-exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod flow;
pub mod packet;
pub mod pcap;
pub mod replay;
pub mod router;
pub mod wire;

pub use features::{
    quantize_ipd, quantize_len, RawBytesFeatures, SeqFeatures, StatFeatures, RAW_BYTES_PER_PACKET,
    WINDOW,
};
pub use flow::{
    Admission, FiveTuple, FlowState, FlowTable, FlowTableConfig, FlowTableStats, FlowTracker,
    PacketObs, SharedFlowTracker, DEFAULT_FLOW_SLOTS,
};
pub use packet::{
    build_packet, parse_packet, PacketSpec, ParseError, ParseErrorKind, ParsedPacket,
};
pub use pcap::{PcapError, PcapReader, PcapRecord, PcapSource, PcapWriter, DEFAULT_SNAPLEN};
pub use replay::{
    FrameSource, PacketSink, PacketSource, RawFrame, ReplayOptions, ReplayStats, Replayer, Trace,
    TracePacket, TraceSource,
};
pub use router::{CompiledRouter, RouteDecision, RouteHit, RoutePredicate, RouteSummary};
pub use wire::{
    build_frame, encode_frame, encode_trace_packet, parse_frame, FrameBatch, FrameSpec, IpAddrs,
    ParsedFrame,
};

//! Five-tuple flow identification and per-flow state tracking.
//!
//! The paper identifies flows by five-tuple (§7.1) and keeps a small amount
//! of per-flow state on the switch: the previous packet timestamp (for IPD)
//! and a window of extracted per-packet features (§7.3). [`FlowTracker`] is
//! the host-side mirror of that state used by dataset construction and by
//! the classifier runtimes.
//!
//! Per-flow state on the switch lives in *fixed-size* register arrays — the
//! scarce resource behind the paper's Figure 7 — so the host-side mirror is
//! bounded too: [`FlowTable`] is a fixed-capacity, hash-indexed,
//! open-addressed slot array with idle-timeout aging (on a packet-count
//! clock, no wall time), capacity-pressure replacement, and a
//! hardware-faithful *alias* mode in which colliding flows share one slot
//! exactly like the switch's hash-indexed register files. Memory is flat in
//! the flow count by construction: the slab is preallocated at the
//! configured capacity and never grows.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// A flow's five-tuple identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

impl FiveTuple {
    /// A compact test/dataset constructor.
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, protocol: u8) -> Self {
        FiveTuple { src_ip, dst_ip, src_port, dst_port, protocol }
    }

    /// The reverse-direction tuple (server-to-client half of a connection).
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A direction-agnostic key: both halves of a connection map to the
    /// same value (canonical ordering of endpoints).
    pub fn bidirectional_key(&self) -> FiveTuple {
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port) {
            *self
        } else {
            self.reversed()
        }
    }

    /// RSS-style shard assignment: which of `shards` workers owns this
    /// flow's state.
    ///
    /// Hashes the [`bidirectional_key`](FiveTuple::bidirectional_key) so
    /// both directions of a connection land on the same shard — the same
    /// trick receive-side scaling uses to keep a TCP connection on one
    /// core. All per-flow state (windows, registers) of a flow therefore
    /// lives in exactly one shard and needs no cross-shard locking.
    pub fn shard_of(&self, shards: usize) -> usize {
        assert!(shards >= 1, "need at least one shard");
        self.bidirectional_key().dataplane_hash() as usize % shards
    }

    /// A 32-bit hash for register indexing on the dataplane (CRC-like fold).
    pub fn dataplane_hash(&self) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        let mut mix = |b: u32| {
            h ^= b;
            h = h.wrapping_mul(0x0100_0193);
        };
        mix(self.src_ip);
        mix(self.dst_ip);
        mix(u32::from(self.src_port) << 16 | u32::from(self.dst_port));
        mix(u32::from(self.protocol));
        h
    }
}

/// One packet observation within a flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketObs {
    /// Wire length in bytes.
    pub wire_len: u16,
    /// Inter-packet delay from the previous packet of this flow, in
    /// microseconds (0 for the first packet).
    pub ipd_micros: u64,
    /// Arrival timestamp in microseconds.
    pub ts_micros: u64,
}

/// Running per-flow statistics and the recent-packet window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowState {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen.
    pub bytes: u64,
    /// Timestamp of the previous packet (for IPD computation).
    pub last_ts_micros: u64,
    /// Minimum wire length seen.
    pub min_len: u16,
    /// Maximum wire length seen.
    pub max_len: u16,
    /// Minimum IPD seen (packets ≥ 2), microseconds.
    pub min_ipd: u64,
    /// Maximum IPD seen (packets ≥ 2), microseconds.
    pub max_ipd: u64,
    /// Most recent observations, newest last, bounded by the window size.
    pub window: Vec<PacketObs>,
    window_cap: usize,
}

impl FlowState {
    fn new(window_cap: usize) -> Self {
        FlowState {
            packets: 0,
            bytes: 0,
            last_ts_micros: 0,
            min_len: u16::MAX,
            max_len: 0,
            min_ipd: u64::MAX,
            max_ipd: 0,
            window: Vec::new(),
            window_cap,
        }
    }

    fn observe(&mut self, ts_micros: u64, wire_len: u16) -> PacketObs {
        let ipd = if self.packets == 0 { 0 } else { ts_micros.saturating_sub(self.last_ts_micros) };
        self.packets += 1;
        self.bytes += u64::from(wire_len);
        self.last_ts_micros = ts_micros;
        self.min_len = self.min_len.min(wire_len);
        self.max_len = self.max_len.max(wire_len);
        if self.packets >= 2 {
            self.min_ipd = self.min_ipd.min(ipd);
            self.max_ipd = self.max_ipd.max(ipd);
        }
        let obs = PacketObs { wire_len, ipd_micros: ipd, ts_micros };
        if self.window.len() == self.window_cap {
            self.window.remove(0);
        }
        self.window.push(obs);
        obs
    }

    /// True once the window holds `window_cap` packets.
    pub fn window_full(&self) -> bool {
        self.window.len() == self.window_cap
    }
}

/// Default slot count of a [`FlowTable`] (and of every tracker built
/// through [`FlowTracker::new`]): 4096 slots, the scale of the paper's
/// per-flow register files (`flow_slots_log2` of 10–12). Any workload whose
/// distinct live flows fit the capacity behaves bit-identically to an
/// unbounded map.
pub const DEFAULT_FLOW_SLOTS: usize = 4096;

/// When the table is completely full, the eviction victim is chosen among
/// the first this-many probe positions of the new flow's chain (the
/// least-recently-seen of them) — the bounded-candidate approximation of
/// LRU that real flow tables (conntrack-style) use.
const EVICT_WINDOW: usize = 8;

/// Configuration of a [`FlowTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowTableConfig {
    /// Slot count — the hard capacity. The slab is preallocated at this
    /// size and never grows. Must be ≥ 1.
    pub capacity: usize,
    /// Idle-timeout aging on the table's packet-count clock (the clock
    /// ticks once per [`admit`](FlowTable::admit)): an entry not touched
    /// for more than this many table packets is considered dead — it is
    /// reclaimed when a new flow's probe path crosses it, and re-warms
    /// from scratch if its own flow returns. `0` disables aging.
    /// Ignored in alias mode (hash-indexed registers never age).
    pub idle_timeout_packets: u64,
    /// Hardware-faithful aliasing: no probing, no eviction — a flow's slot
    /// is exactly `hash % capacity`, and colliding flows *share* the slot's
    /// state, just like the switch's hash-indexed register files (§7.3).
    pub alias: bool,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        FlowTableConfig { capacity: DEFAULT_FLOW_SLOTS, idle_timeout_packets: 0, alias: false }
    }
}

impl FlowTableConfig {
    /// An evicting table of `capacity` slots (no aging).
    pub fn with_capacity(capacity: usize) -> Self {
        FlowTableConfig { capacity, ..FlowTableConfig::default() }
    }

    /// An alias-mode table of `capacity` slots.
    pub fn aliased(capacity: usize) -> Self {
        FlowTableConfig { capacity, idle_timeout_packets: 0, alias: true }
    }
}

/// What [`FlowTable::admit`] did with the packet's flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The flow was already resident; its state was found and touched.
    Existing,
    /// A new flow took an empty slot.
    Fresh,
    /// The flow was resident but idle past the timeout: its state was
    /// reset in place and it re-warms from scratch.
    Rewarmed,
    /// A new flow reclaimed the slot of an idle-expired flow (aging).
    EvictedIdle,
    /// The table was full with no idle entries: a new flow replaced the
    /// least-recently-seen entry in its probe window (capacity pressure).
    EvictedCapacity,
    /// Alias mode: the flow's slot was owned by a different flow; the slot
    /// changed owners and the *state carried over*, exactly like colliding
    /// flows sharing a register-file slot on the switch.
    Aliased,
}

impl Admission {
    /// True when the flow starts (or restarts) from zeroed state — every
    /// outcome except [`Existing`](Admission::Existing) and
    /// [`Aliased`](Admission::Aliased) (aliased flows inherit the previous
    /// owner's state, as the hardware would).
    pub fn fresh_state(&self) -> bool {
        !matches!(self, Admission::Existing | Admission::Aliased)
    }

    /// True when another flow lost its state to this packet.
    pub fn evicted_other(&self) -> bool {
        matches!(self, Admission::EvictedIdle | Admission::EvictedCapacity)
    }
}

/// Cumulative counters of a [`FlowTable`] (never reset by
/// [`clear`](FlowTable::clear)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Entries reclaimed by idle-timeout aging (including in-place
    /// re-warms of a returning idle flow).
    pub evicted_idle: u64,
    /// Entries replaced under capacity pressure (table full).
    pub evicted_capacity: u64,
    /// Alias-mode slot-ownership changes (colliding flows).
    pub alias_collisions: u64,
    /// Highest occupancy ever reached.
    pub peak_occupancy: u64,
}

#[derive(Clone, Debug)]
struct Slot<V> {
    key: FiveTuple,
    last_seen: u64,
    value: V,
}

enum Probe {
    /// Key found at index; flag says it sat idle past the timeout.
    Hit(usize, bool),
    /// Key absent; an empty slot at index ends the chain. The option is an
    /// idle-expired slot seen earlier on the path, preferred for reuse.
    Empty(usize, Option<usize>),
    /// Key absent and the table is full: idle candidate (if any) and the
    /// least-recently-seen slot of the first [`EVICT_WINDOW`] positions.
    Full(Option<usize>, usize),
}

/// A fixed-capacity, hash-indexed flow table — the bounded replacement for
/// `HashMap<FiveTuple, V>` in every serving layer.
///
/// Lookup and insertion probe linearly from `hash % capacity`. Occupied
/// slots are never emptied (entries are only ever *replaced*), so a
/// resident key is always found before the first empty slot of its chain —
/// at load factors below ~0.9 the expected probe length is a small
/// constant, and memory is exactly `capacity` slots forever. Misses are
/// bounded even with no empty slot in sight: an entry's displacement from
/// its home slot is fixed at insert time (replacement never moves
/// entries), so scanning past the longest displacement ever inserted
/// proves a key absent — a full table's miss costs that bound, not a
/// sweep of every slot. When a new flow's probe path finds no room, the
/// table evicts: an idle-expired entry on the path if aging is
/// configured, else (only once the table is completely full) the
/// least-recently-seen entry among the flow's first 8 probe positions.
///
/// With `capacity ≥` the number of distinct live flows and aging disabled,
/// no eviction ever fires and the table is observationally identical to an
/// unbounded map.
///
/// In [alias mode](FlowTableConfig::alias) there is no probing at all:
/// `hash % capacity` *is* the slot, and colliding flows share its state —
/// the exact behavior of the switch's per-flow register files, which is
/// what makes the mode useful for hardware-faithful occupancy accounting.
#[derive(Clone, Debug)]
pub struct FlowTable<V> {
    slots: Vec<Option<Slot<V>>>,
    occupied: usize,
    clock: u64,
    cfg: FlowTableConfig,
    stats: FlowTableStats,
    /// Longest home→slot displacement any entry was ever inserted at.
    /// Displacements are fixed at insert time (replacement never moves
    /// entries), so this is an exact miss bound: a key not found within
    /// `longest_probe` slots of its home is not resident. Keeps full-table
    /// misses O(bound) instead of O(capacity).
    longest_probe: usize,
}

impl<V> FlowTable<V> {
    /// Preallocates a table per `cfg` (panics on zero capacity — reject
    /// that earlier with a proper error where user input reaches this).
    pub fn new(cfg: FlowTableConfig) -> Self {
        assert!(cfg.capacity >= 1, "flow table needs at least one slot");
        let mut slots = Vec::new();
        slots.resize_with(cfg.capacity, || None);
        FlowTable {
            slots,
            occupied: 0,
            clock: 0,
            cfg,
            stats: FlowTableStats::default(),
            longest_probe: 0,
        }
    }

    fn probe(&self, key: &FiveTuple, home: usize) -> Probe {
        let cap = self.slots.len();
        let timeout = self.cfg.idle_timeout_packets;
        let is_idle = |s: &Slot<V>| timeout > 0 && self.clock - s.last_seen > timeout;
        let mut first_idle: Option<usize> = None;
        let mut lru = (home, u64::MAX);
        // A completely full table has no empty terminator, but every
        // resident entry sits within `longest_probe` of its home — scan
        // that far (and at least the eviction window) and stop.
        let limit = if self.occupied == cap {
            cap.min((self.longest_probe + 1).max(EVICT_WINDOW))
        } else {
            cap
        };
        for d in 0..limit {
            let i = (home + d) % cap;
            match &self.slots[i] {
                None => return Probe::Empty(i, first_idle),
                Some(s) if s.key == *key => return Probe::Hit(i, is_idle(s)),
                Some(s) => {
                    if first_idle.is_none() && is_idle(s) {
                        first_idle = Some(i);
                    }
                    if d < EVICT_WINDOW && s.last_seen < lru.1 {
                        lru = (i, s.last_seen);
                    }
                }
            }
        }
        Probe::Full(first_idle, lru.0)
    }

    /// Admits one packet of `key`'s flow: finds (or creates, via `new`) its
    /// slot, advances the packet-count clock, applies aging/eviction, and
    /// returns what happened plus the flow's state.
    pub fn admit(&mut self, key: FiveTuple, new: impl FnOnce() -> V) -> (Admission, &mut V) {
        let (admission, _, value) = self.admit_indexed(key, new);
        (admission, value)
    }

    /// [`admit`](FlowTable::admit) that also reports the resolved slot
    /// index — the batched ingress feeds it back as the *hint* of the
    /// flow's next admission ([`admit_hinted`](FlowTable::admit_hinted)).
    pub fn admit_indexed(
        &mut self,
        key: FiveTuple,
        new: impl FnOnce() -> V,
    ) -> (Admission, usize, &mut V) {
        self.clock += 1;
        let cap = self.slots.len();
        let home = key.dataplane_hash() as usize % cap;

        let (idx, admission) = if self.cfg.alias {
            let admission = match &mut self.slots[home] {
                Some(s) if s.key == key => Admission::Existing,
                Some(s) => {
                    // State intentionally carried over: on the switch the
                    // register contents do not know the owner changed.
                    s.key = key;
                    self.stats.alias_collisions += 1;
                    Admission::Aliased
                }
                empty => {
                    *empty = Some(Slot { key, last_seen: self.clock, value: new() });
                    self.occupied += 1;
                    Admission::Fresh
                }
            };
            (home, admission)
        } else {
            match self.probe(&key, home) {
                Probe::Hit(i, false) => (i, Admission::Existing),
                Probe::Hit(i, true) => {
                    // The flow's own entry aged out: re-warm from scratch.
                    self.stats.evicted_idle += 1;
                    self.slots[i].as_mut().expect("hit slot occupied").value = new();
                    (i, Admission::Rewarmed)
                }
                Probe::Empty(empty, None) => {
                    self.slots[empty] = Some(Slot { key, last_seen: self.clock, value: new() });
                    self.occupied += 1;
                    (empty, Admission::Fresh)
                }
                Probe::Empty(_, Some(idle)) | Probe::Full(Some(idle), _) => {
                    self.stats.evicted_idle += 1;
                    let s = self.slots[idle].as_mut().expect("idle slot occupied");
                    s.key = key;
                    s.value = new();
                    (idle, Admission::EvictedIdle)
                }
                Probe::Full(None, lru) => {
                    self.stats.evicted_capacity += 1;
                    let s = self.slots[lru].as_mut().expect("lru slot occupied");
                    s.key = key;
                    s.value = new();
                    (lru, Admission::EvictedCapacity)
                }
            }
        };
        if matches!(
            admission,
            Admission::Fresh | Admission::EvictedIdle | Admission::EvictedCapacity
        ) {
            let d = (idx + cap - home) % cap;
            self.longest_probe = self.longest_probe.max(d);
        }
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.occupied as u64);
        let slot = self.slots[idx].as_mut().expect("admitted slot occupied");
        slot.last_seen = self.clock;
        (admission, idx, &mut slot.value)
    }

    /// [`admit_indexed`](FlowTable::admit_indexed) with a slot *hint* from
    /// a previous admission of the same flow — the batched ingress's fast
    /// path for the second and later packets of a flow inside one batch.
    ///
    /// When the hinted slot still holds `key` and has not aged out, the
    /// probe chain is skipped entirely: one slot load replaces the
    /// cache-missing home→slot walk. Entries never move between slots, so
    /// a live hit at the hinted slot is exactly the hit the probe would
    /// have found; in every other case (stale hint, evicted entry, idle
    /// timeout, alias mode) this falls back to the full admission path —
    /// the outcome, counters and clock are identical to calling
    /// `admit_indexed`, packet for packet.
    pub fn admit_hinted(
        &mut self,
        key: FiveTuple,
        hint: usize,
        new: impl FnOnce() -> V,
    ) -> (Admission, usize, &mut V) {
        if !self.cfg.alias && hint < self.slots.len() {
            let timeout = self.cfg.idle_timeout_packets;
            // The clock value the full path would probe under (it ticks
            // before probing), so the idle check agrees bit for bit.
            let clock = self.clock + 1;
            let live = matches!(
                &self.slots[hint],
                Some(s) if s.key == key && !(timeout > 0 && clock - s.last_seen > timeout)
            );
            if live {
                self.clock = clock;
                let slot = self.slots[hint].as_mut().expect("hinted slot occupied");
                slot.last_seen = clock;
                return (Admission::Existing, hint, &mut slot.value);
            }
        }
        self.admit_indexed(key, new)
    }

    /// Looks up a resident flow's state (aging applies at
    /// [`admit`](FlowTable::admit) time only; an idle entry still reads).
    pub fn get(&self, key: &FiveTuple) -> Option<&V> {
        let cap = self.slots.len();
        let home = key.dataplane_hash() as usize % cap;
        if self.cfg.alias {
            return self.slots[home].as_ref().filter(|s| s.key == *key).map(|s| &s.value);
        }
        for d in 0..cap.min(self.longest_probe + 1) {
            match &self.slots[(home + d) % cap] {
                None => return None,
                Some(s) if s.key == *key => return Some(&s.value),
                Some(_) => {}
            }
        }
        None
    }

    /// Occupied slots (resident flows; in alias mode, slots with at least
    /// one owner ever).
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Cumulative eviction/collision counters.
    pub fn stats(&self) -> FlowTableStats {
        self.stats
    }

    /// Packets admitted over the table's lifetime (the aging clock).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Bytes of the preallocated slab — flat in the flow count by
    /// construction (per-value heap, e.g. window `Vec`s, is extra and
    /// bounded by `capacity × per-flow window`).
    pub fn slab_bytes(&self) -> u64 {
        (self.slots.len() * std::mem::size_of::<Option<Slot<V>>>()) as u64
    }

    /// Empties every slot (counters and the clock keep running — a
    /// cleared table is a fresh register file, not a fresh switch).
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.occupied = 0;
        self.longest_probe = 0;
    }

    /// Iterates resident flows **sorted by five-tuple**, so downstream
    /// reports and examples are reproducible run to run (slot order is an
    /// artifact of hashing and probe history).
    pub fn iter(&self) -> impl Iterator<Item = (&FiveTuple, &V)> {
        let mut entries: Vec<(&FiveTuple, &V)> =
            self.slots.iter().flatten().map(|s| (&s.key, &s.value)).collect();
        entries.sort_by_key(|(k, _)| **k);
        entries.into_iter()
    }
}

/// Host-side flow table: five-tuple → [`FlowState`], bounded by a
/// [`FlowTable`] slab.
#[derive(Clone, Debug)]
pub struct FlowTracker {
    table: FlowTable<FlowState>,
    window_cap: usize,
}

impl FlowTracker {
    /// Creates a tracker keeping per-flow windows of `window_cap` packets,
    /// with the default table shape ([`DEFAULT_FLOW_SLOTS`] slots, no
    /// aging) — behaviorally identical to the old unbounded tracker for
    /// any workload under that many concurrent flows.
    pub fn new(window_cap: usize) -> Self {
        FlowTracker::bounded(window_cap, FlowTableConfig::default())
    }

    /// Creates a tracker over an explicitly configured [`FlowTable`].
    pub fn bounded(window_cap: usize, table: FlowTableConfig) -> Self {
        assert!(window_cap >= 1);
        FlowTracker { table: FlowTable::new(table), window_cap }
    }

    /// Records a packet, returning the observation (with computed IPD) and
    /// a reference to the updated flow state.
    pub fn observe(
        &mut self,
        flow: FiveTuple,
        ts_micros: u64,
        wire_len: u16,
    ) -> (PacketObs, &FlowState) {
        let (obs, _, state) = self.observe_admit(flow, ts_micros, wire_len);
        (obs, state)
    }

    /// [`observe`](FlowTracker::observe) that also reports what the table
    /// did with the flow (evictions, aliasing, re-warms) — the serving
    /// engine's counters come from here.
    pub fn observe_admit(
        &mut self,
        flow: FiveTuple,
        ts_micros: u64,
        wire_len: u16,
    ) -> (PacketObs, Admission, &FlowState) {
        let window_cap = self.window_cap;
        let (admission, state) = self.table.admit(flow, || FlowState::new(window_cap));
        let obs = state.observe(ts_micros, wire_len);
        (obs, admission, &*state)
    }

    /// [`observe_admit`](FlowTracker::observe_admit) with a slot hint from
    /// a previous admission of the same flow, reporting the resolved slot
    /// index back — the batched ingress's per-batch flow cache feeds this
    /// ([`FlowTable::admit_hinted`] has the exact-equivalence contract).
    pub fn observe_admit_hinted(
        &mut self,
        flow: FiveTuple,
        ts_micros: u64,
        wire_len: u16,
        hint: Option<usize>,
    ) -> (PacketObs, Admission, usize, &FlowState) {
        let window_cap = self.window_cap;
        let (admission, idx, state) = match hint {
            Some(h) => self.table.admit_hinted(flow, h, || FlowState::new(window_cap)),
            None => self.table.admit_indexed(flow, || FlowState::new(window_cap)),
        };
        let obs = state.observe(ts_micros, wire_len);
        (obs, admission, idx, &*state)
    }

    /// Looks up a flow's state.
    pub fn get(&self, flow: &FiveTuple) -> Option<&FlowState> {
        self.table.get(flow)
    }

    /// Number of tracked flows (occupied slots).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The table's fixed slot count.
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Cumulative eviction/collision counters of the underlying table.
    pub fn table_stats(&self) -> FlowTableStats {
        self.table.stats()
    }

    /// Flow-state bytes in use: the flat preallocated slab plus the
    /// bounded per-flow window heap — never grows past the capacity's
    /// worth of flows, unlike a `HashMap` under churn.
    pub fn state_bytes(&self) -> u64 {
        self.table.slab_bytes()
            + (self.table.len() * self.window_cap * std::mem::size_of::<PacketObs>()) as u64
    }

    /// Iterates tracked flows, sorted by five-tuple (reproducible order).
    pub fn iter(&self) -> impl Iterator<Item = (&FiveTuple, &FlowState)> {
        self.table.iter()
    }
}

/// A thread-safe flow tracker for multi-threaded throughput harnesses.
///
/// Sharded by flow hash to avoid a single global lock on the hot path.
pub struct SharedFlowTracker {
    shards: Vec<Mutex<FlowTracker>>,
}

impl SharedFlowTracker {
    /// Creates a sharded tracker with the default per-shard table shape.
    pub fn new(shards: usize, window_cap: usize) -> Self {
        SharedFlowTracker::bounded(shards, window_cap, FlowTableConfig::default())
    }

    /// Creates a sharded tracker; every shard gets its own table of
    /// `per_shard.capacity` slots (flows are partitioned by hash, so the
    /// aggregate capacity is `shards × per_shard.capacity`).
    pub fn bounded(shards: usize, window_cap: usize, per_shard: FlowTableConfig) -> Self {
        assert!(shards >= 1);
        SharedFlowTracker {
            shards: (0..shards)
                .map(|_| Mutex::new(FlowTracker::bounded(window_cap, per_shard)))
                .collect(),
        }
    }

    /// Records a packet (see [`FlowTracker::observe`]); returns the
    /// observation and whether the flow's window is now full.
    pub fn observe(&self, flow: FiveTuple, ts_micros: u64, wire_len: u16) -> (PacketObs, bool) {
        let shard = flow.dataplane_hash() as usize % self.shards.len();
        let mut guard = self.shards[shard].lock().expect("tracker shard poisoned");
        let (obs, state) = guard.observe(flow, ts_micros, wire_len);
        (obs, state.window_full())
    }

    /// Total flows across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("tracker shard poisoned").len()).sum()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// --- serde (control-daemon wire format) --------------------------------

serde::impl_serde_struct!(FiveTuple { src_ip, dst_ip, src_port, dst_port, protocol });
serde::impl_serde_struct!(FlowTableConfig { capacity, idle_timeout_packets, alias });

#[cfg(test)]
mod tests {
    use super::*;

    fn ft(n: u32) -> FiveTuple {
        FiveTuple::new(n, 99, 1000, 80, 6)
    }

    #[test]
    fn ipd_computed_between_packets() {
        let mut t = FlowTracker::new(4);
        let (o1, _) = t.observe(ft(1), 1000, 100);
        assert_eq!(o1.ipd_micros, 0);
        let (o2, _) = t.observe(ft(1), 1500, 200);
        assert_eq!(o2.ipd_micros, 500);
    }

    #[test]
    fn min_max_stats_track() {
        let mut t = FlowTracker::new(4);
        t.observe(ft(1), 0, 100);
        t.observe(ft(1), 10, 1500);
        t.observe(ft(1), 1000, 40);
        let s = t.get(&ft(1)).unwrap();
        assert_eq!(s.min_len, 40);
        assert_eq!(s.max_len, 1500);
        assert_eq!(s.min_ipd, 10);
        assert_eq!(s.max_ipd, 990);
        assert_eq!(s.packets, 3);
    }

    #[test]
    fn window_is_bounded_and_ordered() {
        let mut t = FlowTracker::new(2);
        t.observe(ft(1), 0, 1);
        t.observe(ft(1), 1, 2);
        t.observe(ft(1), 2, 3);
        let s = t.get(&ft(1)).unwrap();
        assert_eq!(s.window.len(), 2);
        assert_eq!(s.window[0].wire_len, 2);
        assert_eq!(s.window[1].wire_len, 3);
        assert!(s.window_full());
    }

    #[test]
    fn flows_are_independent() {
        let mut t = FlowTracker::new(4);
        t.observe(ft(1), 0, 100);
        t.observe(ft(2), 5, 200);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&ft(1)).unwrap().packets, 1);
        assert_eq!(t.get(&ft(2)).unwrap().max_len, 200);
    }

    #[test]
    fn bidirectional_key_is_symmetric() {
        let a = FiveTuple::new(10, 20, 1000, 80, 6);
        assert_eq!(a.bidirectional_key(), a.reversed().bidirectional_key());
    }

    #[test]
    fn dataplane_hash_differs_across_flows() {
        assert_ne!(ft(1).dataplane_hash(), ft(2).dataplane_hash());
    }

    #[test]
    fn shard_of_is_direction_agnostic_and_covers_shards() {
        let a = FiveTuple::new(10, 20, 1000, 80, 6);
        for shards in [1usize, 2, 4, 7] {
            assert_eq!(a.shard_of(shards), a.reversed().shard_of(shards));
            assert!(a.shard_of(shards) < shards);
        }
        // Many flows spread over all shards.
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[ft(i).shard_of(4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shared_tracker_counts_flows() {
        let t = SharedFlowTracker::new(4, 2);
        let (_, full1) = t.observe(ft(1), 0, 10);
        assert!(!full1);
        let (_, full2) = t.observe(ft(1), 1, 20);
        assert!(full2);
        t.observe(ft(2), 0, 10);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn shared_tracker_is_threadsafe() {
        use std::sync::Arc;
        let t = Arc::new(SharedFlowTracker::new(8, 4));
        let handles: Vec<_> = (0..4u32)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        t.observe(ft(tid * 1000 + i), u64::from(i), 100);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 400);
    }

    #[test]
    fn iter_is_sorted_by_five_tuple() {
        let mut t = FlowTracker::new(2);
        // Insertion order deliberately scrambled relative to tuple order.
        for n in [9u32, 1, 7, 3, 5] {
            t.observe(ft(n), 0, 10);
        }
        let keys: Vec<u32> = t.iter().map(|(f, _)| f.src_ip).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn bounded_matches_unbounded_semantics_when_capacity_suffices() {
        // A 4-slot table over 3 flows behaves exactly like the old
        // unbounded map: every flow keeps its own state, no evictions.
        let mut t = FlowTracker::bounded(2, FlowTableConfig::with_capacity(4));
        for i in 0..6u64 {
            for n in 1..=3u32 {
                t.observe(ft(n), i * 100, 100 + n as u16);
            }
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.table_stats(), FlowTableStats { peak_occupancy: 3, ..Default::default() });
        for n in 1..=3u32 {
            assert_eq!(t.get(&ft(n)).unwrap().packets, 6);
        }
    }

    #[test]
    fn full_table_evicts_lru_and_victim_rewarms_on_return() {
        // Capacity 2: flows A and B fill the table; C must evict the
        // least-recently-seen (A). When A returns it re-warms from scratch.
        let mut t = FlowTracker::bounded(4, FlowTableConfig::with_capacity(2));
        t.observe(ft(1), 0, 10); // A
        t.observe(ft(2), 1, 10); // B
        t.observe(ft(2), 2, 10); // B again: A is now LRU
        let (_, adm, _) = t.observe_admit(ft(3), 3, 10); // C evicts A
        assert_eq!(adm, Admission::EvictedCapacity);
        assert_eq!(t.len(), 2);
        assert!(t.get(&ft(1)).is_none(), "A's state must be gone");
        assert_eq!(t.get(&ft(2)).unwrap().packets, 2, "B untouched");
        let (_, adm, state) = t.observe_admit(ft(1), 4, 10);
        assert!(adm.fresh_state(), "returning evicted flow starts over, got {adm:?}");
        assert_eq!(state.packets, 1);
        assert_eq!(t.table_stats().evicted_capacity, 2, "A's return evicted someone else");
    }

    #[test]
    fn idle_flows_age_out_on_the_packet_clock() {
        let cfg = FlowTableConfig { capacity: 8, idle_timeout_packets: 3, alias: false };
        let mut t = FlowTracker::bounded(4, cfg);
        t.observe(ft(1), 0, 10);
        // Two packets of other flows: at flow 1's next admission the clock
        // has advanced 3 ticks since it was last seen (its own admission
        // ticks too) — exactly the timeout, not yet expired (strict
        // inequality).
        t.observe(ft(2), 1, 10);
        t.observe(ft(2), 2, 10);
        let (_, adm, _) = t.observe_admit(ft(1), 4, 10);
        assert_eq!(adm, Admission::Existing, "at the boundary the flow is still live");
        // Now push it past the timeout and watch it re-warm in place.
        for i in 0..4u64 {
            t.observe(ft(2), 5 + i, 10);
        }
        let (_, adm, state) = t.observe_admit(ft(1), 20, 10);
        assert_eq!(adm, Admission::Rewarmed);
        assert_eq!(state.packets, 1, "aged-out flow restarts from scratch");
        assert_eq!(t.table_stats().evicted_idle, 1);
    }

    #[test]
    fn new_flow_reclaims_idle_slot_on_its_probe_path() {
        // A recently-active flow is protected: with every slot live, a new
        // flow falls back to capacity-pressure replacement...
        let cfg = FlowTableConfig { capacity: 1, idle_timeout_packets: 2, alias: false };
        let mut t = FlowTracker::bounded(4, cfg);
        t.observe(ft(1), 0, 10);
        let (_, adm, _) = t.observe_admit(ft(2), 10, 10);
        assert_eq!(adm, Admission::EvictedCapacity);
        // ...but an idle-expired resident is reclaimed as EvictedIdle.
        let cfg2 = FlowTableConfig { capacity: 2, idle_timeout_packets: 2, alias: false };
        let mut t2 = FlowTracker::bounded(4, cfg2);
        t2.observe(ft(1), 0, 10);
        for i in 1..=4u64 {
            t2.observe(ft(2), i, 10); // ticks the clock; flow 1 goes idle
        }
        let (_, adm, _) = t2.observe_admit(ft(3), 5, 10);
        assert_eq!(adm, Admission::EvictedIdle);
        assert_eq!(t2.table_stats().evicted_idle, 1);
        assert!(t2.get(&ft(1)).is_none(), "the idle flow lost its slot");
        assert!(t2.get(&ft(2)).is_some(), "the live flow kept its slot");
    }

    /// The hinted fast path is observationally identical to the probed
    /// path over a churning workload — same admission sequence, same slot
    /// indices, same cumulative stats — even when hints go stale through
    /// evictions and idle timeouts (those must fall back).
    #[test]
    fn hinted_admission_is_exactly_the_probed_admission() {
        let cfg = FlowTableConfig { capacity: 8, idle_timeout_packets: 6, alias: false };
        let mut probed = FlowTracker::bounded(2, cfg);
        let mut hinted = FlowTracker::bounded(2, cfg);
        let mut hints: std::collections::HashMap<FiveTuple, usize> =
            std::collections::HashMap::new();
        // Deterministic churn over 24 flows through 8 slots: plenty of
        // capacity evictions, idle re-warms, and repeat packets.
        let mut x = 0x2545_f491u64;
        for step in 0..4000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let flow = ft(((x >> 33) % 24) as u32 + 1);
            let (obs_a, adm_a, state_a) = probed.observe_admit(flow, step, 64);
            let (pkts_a, win_a) = (state_a.packets, state_a.window_full());
            let hint = hints.get(&flow).copied();
            let (obs_b, adm_b, idx, state_b) = hinted.observe_admit_hinted(flow, step, 64, hint);
            assert_eq!(adm_b, adm_a, "step {step}: admission diverged");
            assert_eq!(obs_b, obs_a, "step {step}: observation diverged");
            assert_eq!((state_b.packets, state_b.window_full()), (pkts_a, win_a));
            hints.insert(flow, idx);
        }
        assert_eq!(hinted.table_stats(), probed.table_stats());
        assert_eq!(hinted.len(), probed.len());
        let s = probed.table_stats();
        assert!(s.evicted_idle + s.evicted_capacity > 0, "workload must actually churn");
    }

    #[test]
    fn stale_hint_falls_back_to_the_probe_path() {
        // Flow A at a known slot; then A is LRU-evicted by C. A's old hint
        // now names C's slot — admit_hinted must fall back and re-admit A
        // exactly like the unhinted path (fresh state, capacity eviction).
        let cfg = FlowTableConfig::with_capacity(2);
        let mut t = FlowTable::new(cfg);
        let (adm, a_slot, _) = t.admit_indexed(ft(1), || 0u32);
        assert_eq!(adm, Admission::Fresh);
        t.admit(ft(2), || 0); // B
        t.admit(ft(2), || 0); // B again: A is LRU
        let (adm, _, _) = t.admit_indexed(ft(3), || 0); // C evicts A
        assert_eq!(adm, Admission::EvictedCapacity);
        let (adm, idx, _) = t.admit_hinted(ft(1), a_slot, || 7);
        assert_eq!(adm, Admission::EvictedCapacity, "stale hint must not resurrect A");
        assert_ne!((adm, idx), (Admission::Existing, a_slot));
        assert_eq!(t.stats().evicted_capacity, 2);

        // And a hint at an idle-expired entry re-warms instead of touching.
        let cfg = FlowTableConfig { capacity: 4, idle_timeout_packets: 2, alias: false };
        let mut t = FlowTable::new(cfg);
        let (_, slot, _) = t.admit_indexed(ft(1), || 1u32);
        for _ in 0..4 {
            t.admit(ft(2), || 2); // clock ticks; flow 1 goes idle
        }
        let (adm, idx, v) = t.admit_hinted(ft(1), slot, || 9);
        assert_eq!(adm, Admission::Rewarmed, "idle entry must re-warm, not fast-path");
        assert_eq!(idx, slot);
        assert_eq!(*v, 9, "re-warm rebuilt the value");
    }

    #[test]
    fn alias_mode_shares_slot_state_like_register_files() {
        // Capacity 1 forces every flow onto one slot — the degenerate
        // register file. The second flow must CONTINUE the first flow's
        // state (window, counters), exactly like the switch's hash-indexed
        // registers, not reset it.
        let mut t = FlowTracker::bounded(2, FlowTableConfig::aliased(1));
        t.observe(ft(1), 0, 10);
        let (_, adm, state) = t.observe_admit(ft(2), 1, 20);
        assert_eq!(adm, Admission::Aliased);
        assert_eq!(state.packets, 2, "aliased flow inherits the resident state");
        assert!(state.window_full(), "two packets fill the shared 2-window");
        assert_eq!(t.len(), 1);
        assert_eq!(t.table_stats().alias_collisions, 1);
        // The slot's owner is now flow 2; flow 1 is no longer resident.
        assert!(t.get(&ft(1)).is_none());
        assert!(t.get(&ft(2)).is_some());
    }

    #[test]
    fn alias_slot_indexing_matches_register_semantics() {
        // An alias table of 2^k slots and a RegisterArray of the same size
        // agree on which flows share state: slot = dataplane_hash % size.
        let slots = 16usize;
        let mut table = FlowTable::<u32>::new(FlowTableConfig::aliased(slots));
        let mut reg = vec![0u32; slots]; // a register array's counter bank
        for n in 0..64u32 {
            let flow = ft(n);
            reg[flow.dataplane_hash() as usize % slots] += 1;
            let (_, count) = table.admit(flow, || 0);
            *count += 1;
        }
        // Every resident entry's counter equals the register slot value.
        for (flow, &count) in table.iter() {
            assert_eq!(count, reg[flow.dataplane_hash() as usize % slots]);
        }
        assert_eq!(table.len(), reg.iter().filter(|&&c| c > 0).count());
    }

    #[test]
    fn residents_stay_findable_through_full_table_churn() {
        // The displacement-bounded miss scan must never lose a resident:
        // after every admit — across fill-up, saturation, and heavy
        // eviction churn — the admitted flow is immediately resident and
        // a re-admit is a plain hit.
        let mut t = FlowTable::<u32>::new(FlowTableConfig::with_capacity(32));
        for n in 0..500u32 {
            let flow = ft(n % 97); // revisits mix with new flows
            t.admit(flow, || n);
            assert!(t.get(&flow).is_some(), "flow {n} vanished right after admit");
            let (adm, _) = t.admit(flow, || u32::MAX);
            assert_eq!(adm, Admission::Existing, "flow {n} re-admit must hit its slot");
        }
        assert_eq!(t.len(), 32, "churn saturates the table");
    }

    #[test]
    fn clear_empties_slots_but_keeps_counters() {
        let mut t = FlowTable::<u8>::new(FlowTableConfig::with_capacity(2));
        t.admit(ft(1), || 0);
        t.admit(ft(2), || 0);
        t.admit(ft(3), || 0); // eviction
        assert_eq!(t.stats().evicted_capacity, 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.stats().evicted_capacity, 1, "stats are cumulative");
        assert_eq!(t.stats().peak_occupancy, 2);
        let (adm, _) = t.admit(ft(1), || 0);
        assert_eq!(adm, Admission::Fresh);
    }

    #[test]
    fn slab_bytes_is_flat_under_churn() {
        let mut t = FlowTracker::bounded(4, FlowTableConfig::with_capacity(64));
        let before = t.state_bytes();
        for n in 0..10_000u32 {
            t.observe(ft(n), u64::from(n), 100);
        }
        let after = t.state_bytes();
        assert!(t.len() <= 64);
        // Slab is constant; only the ≤ capacity window heap was added.
        assert!(
            after <= before + 64 * 4 * std::mem::size_of::<PacketObs>() as u64,
            "state bytes grew past the capacity bound: {before} -> {after}"
        );
    }
}

//! Five-tuple flow identification and per-flow state tracking.
//!
//! The paper identifies flows by five-tuple (§7.1) and keeps a small amount
//! of per-flow state on the switch: the previous packet timestamp (for IPD)
//! and a window of extracted per-packet features (§7.3). [`FlowTracker`] is
//! the host-side mirror of that state used by dataset construction and by
//! the classifier runtimes.

use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Mutex;

/// A flow's five-tuple identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

impl FiveTuple {
    /// A compact test/dataset constructor.
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, protocol: u8) -> Self {
        FiveTuple { src_ip, dst_ip, src_port, dst_port, protocol }
    }

    /// The reverse-direction tuple (server-to-client half of a connection).
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A direction-agnostic key: both halves of a connection map to the
    /// same value (canonical ordering of endpoints).
    pub fn bidirectional_key(&self) -> FiveTuple {
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port) {
            *self
        } else {
            self.reversed()
        }
    }

    /// RSS-style shard assignment: which of `shards` workers owns this
    /// flow's state.
    ///
    /// Hashes the [`bidirectional_key`](FiveTuple::bidirectional_key) so
    /// both directions of a connection land on the same shard — the same
    /// trick receive-side scaling uses to keep a TCP connection on one
    /// core. All per-flow state (windows, registers) of a flow therefore
    /// lives in exactly one shard and needs no cross-shard locking.
    pub fn shard_of(&self, shards: usize) -> usize {
        assert!(shards >= 1, "need at least one shard");
        self.bidirectional_key().dataplane_hash() as usize % shards
    }

    /// A 32-bit hash for register indexing on the dataplane (CRC-like fold).
    pub fn dataplane_hash(&self) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        let mut mix = |b: u32| {
            h ^= b;
            h = h.wrapping_mul(0x0100_0193);
        };
        mix(self.src_ip);
        mix(self.dst_ip);
        mix(u32::from(self.src_port) << 16 | u32::from(self.dst_port));
        mix(u32::from(self.protocol));
        h
    }
}

/// One packet observation within a flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketObs {
    /// Wire length in bytes.
    pub wire_len: u16,
    /// Inter-packet delay from the previous packet of this flow, in
    /// microseconds (0 for the first packet).
    pub ipd_micros: u64,
    /// Arrival timestamp in microseconds.
    pub ts_micros: u64,
}

/// Running per-flow statistics and the recent-packet window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowState {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen.
    pub bytes: u64,
    /// Timestamp of the previous packet (for IPD computation).
    pub last_ts_micros: u64,
    /// Minimum wire length seen.
    pub min_len: u16,
    /// Maximum wire length seen.
    pub max_len: u16,
    /// Minimum IPD seen (packets ≥ 2), microseconds.
    pub min_ipd: u64,
    /// Maximum IPD seen (packets ≥ 2), microseconds.
    pub max_ipd: u64,
    /// Most recent observations, newest last, bounded by the window size.
    pub window: Vec<PacketObs>,
    window_cap: usize,
}

impl FlowState {
    fn new(window_cap: usize) -> Self {
        FlowState {
            packets: 0,
            bytes: 0,
            last_ts_micros: 0,
            min_len: u16::MAX,
            max_len: 0,
            min_ipd: u64::MAX,
            max_ipd: 0,
            window: Vec::new(),
            window_cap,
        }
    }

    fn observe(&mut self, ts_micros: u64, wire_len: u16) -> PacketObs {
        let ipd = if self.packets == 0 { 0 } else { ts_micros.saturating_sub(self.last_ts_micros) };
        self.packets += 1;
        self.bytes += u64::from(wire_len);
        self.last_ts_micros = ts_micros;
        self.min_len = self.min_len.min(wire_len);
        self.max_len = self.max_len.max(wire_len);
        if self.packets >= 2 {
            self.min_ipd = self.min_ipd.min(ipd);
            self.max_ipd = self.max_ipd.max(ipd);
        }
        let obs = PacketObs { wire_len, ipd_micros: ipd, ts_micros };
        if self.window.len() == self.window_cap {
            self.window.remove(0);
        }
        self.window.push(obs);
        obs
    }

    /// True once the window holds `window_cap` packets.
    pub fn window_full(&self) -> bool {
        self.window.len() == self.window_cap
    }
}

/// Host-side flow table: five-tuple → [`FlowState`].
#[derive(Clone, Debug)]
pub struct FlowTracker {
    flows: HashMap<FiveTuple, FlowState>,
    window_cap: usize,
}

impl FlowTracker {
    /// Creates a tracker keeping per-flow windows of `window_cap` packets.
    pub fn new(window_cap: usize) -> Self {
        assert!(window_cap >= 1);
        FlowTracker { flows: HashMap::new(), window_cap }
    }

    /// Records a packet, returning the observation (with computed IPD) and
    /// a reference to the updated flow state.
    pub fn observe(
        &mut self,
        flow: FiveTuple,
        ts_micros: u64,
        wire_len: u16,
    ) -> (PacketObs, &FlowState) {
        let state = match self.flows.entry(flow) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => e.insert(FlowState::new(self.window_cap)),
        };
        let obs = state.observe(ts_micros, wire_len);
        (obs, &*state)
    }

    /// Looks up a flow's state.
    pub fn get(&self, flow: &FiveTuple) -> Option<&FlowState> {
        self.flows.get(flow)
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Iterates tracked flows.
    pub fn iter(&self) -> impl Iterator<Item = (&FiveTuple, &FlowState)> {
        self.flows.iter()
    }
}

/// A thread-safe flow tracker for multi-threaded throughput harnesses.
///
/// Sharded by flow hash to avoid a single global lock on the hot path.
pub struct SharedFlowTracker {
    shards: Vec<Mutex<FlowTracker>>,
}

impl SharedFlowTracker {
    /// Creates a sharded tracker.
    pub fn new(shards: usize, window_cap: usize) -> Self {
        assert!(shards >= 1);
        SharedFlowTracker {
            shards: (0..shards).map(|_| Mutex::new(FlowTracker::new(window_cap))).collect(),
        }
    }

    /// Records a packet (see [`FlowTracker::observe`]); returns the
    /// observation and whether the flow's window is now full.
    pub fn observe(&self, flow: FiveTuple, ts_micros: u64, wire_len: u16) -> (PacketObs, bool) {
        let shard = flow.dataplane_hash() as usize % self.shards.len();
        let mut guard = self.shards[shard].lock().expect("tracker shard poisoned");
        let (obs, state) = guard.observe(flow, ts_micros, wire_len);
        (obs, state.window_full())
    }

    /// Total flows across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("tracker shard poisoned").len()).sum()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft(n: u32) -> FiveTuple {
        FiveTuple::new(n, 99, 1000, 80, 6)
    }

    #[test]
    fn ipd_computed_between_packets() {
        let mut t = FlowTracker::new(4);
        let (o1, _) = t.observe(ft(1), 1000, 100);
        assert_eq!(o1.ipd_micros, 0);
        let (o2, _) = t.observe(ft(1), 1500, 200);
        assert_eq!(o2.ipd_micros, 500);
    }

    #[test]
    fn min_max_stats_track() {
        let mut t = FlowTracker::new(4);
        t.observe(ft(1), 0, 100);
        t.observe(ft(1), 10, 1500);
        t.observe(ft(1), 1000, 40);
        let s = t.get(&ft(1)).unwrap();
        assert_eq!(s.min_len, 40);
        assert_eq!(s.max_len, 1500);
        assert_eq!(s.min_ipd, 10);
        assert_eq!(s.max_ipd, 990);
        assert_eq!(s.packets, 3);
    }

    #[test]
    fn window_is_bounded_and_ordered() {
        let mut t = FlowTracker::new(2);
        t.observe(ft(1), 0, 1);
        t.observe(ft(1), 1, 2);
        t.observe(ft(1), 2, 3);
        let s = t.get(&ft(1)).unwrap();
        assert_eq!(s.window.len(), 2);
        assert_eq!(s.window[0].wire_len, 2);
        assert_eq!(s.window[1].wire_len, 3);
        assert!(s.window_full());
    }

    #[test]
    fn flows_are_independent() {
        let mut t = FlowTracker::new(4);
        t.observe(ft(1), 0, 100);
        t.observe(ft(2), 5, 200);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&ft(1)).unwrap().packets, 1);
        assert_eq!(t.get(&ft(2)).unwrap().max_len, 200);
    }

    #[test]
    fn bidirectional_key_is_symmetric() {
        let a = FiveTuple::new(10, 20, 1000, 80, 6);
        assert_eq!(a.bidirectional_key(), a.reversed().bidirectional_key());
    }

    #[test]
    fn dataplane_hash_differs_across_flows() {
        assert_ne!(ft(1).dataplane_hash(), ft(2).dataplane_hash());
    }

    #[test]
    fn shard_of_is_direction_agnostic_and_covers_shards() {
        let a = FiveTuple::new(10, 20, 1000, 80, 6);
        for shards in [1usize, 2, 4, 7] {
            assert_eq!(a.shard_of(shards), a.reversed().shard_of(shards));
            assert!(a.shard_of(shards) < shards);
        }
        // Many flows spread over all shards.
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[ft(i).shard_of(4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shared_tracker_counts_flows() {
        let t = SharedFlowTracker::new(4, 2);
        let (_, full1) = t.observe(ft(1), 0, 10);
        assert!(!full1);
        let (_, full2) = t.observe(ft(1), 1, 20);
        assert!(full2);
        t.observe(ft(2), 0, 10);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn shared_tracker_is_threadsafe() {
        use std::sync::Arc;
        let t = Arc::new(SharedFlowTracker::new(8, 4));
        let handles: Vec<_> = (0..4u32)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        t.observe(ft(tid * 1000 + i), u64::from(i), 100);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 400);
    }
}

//! Per-packet and per-flow feature extraction.
//!
//! The evaluation uses three feature families (§6.3, §7.2):
//!
//! * **Statistical features** (MLP-B, N3IC, Leo): 16 bytes = 128 bits of
//!   flow-level min/max packet length and IPD plus packet-level header
//!   fields — only quantities a switch can actually maintain (the paper
//!   notes means/sums are impractical on the dataplane).
//! * **Packet sequences** (RNN-B, CNN-B/M, BoS, AutoEncoder): for a window
//!   of [`WINDOW`] packets, the quantized (length, IPD) pair per packet —
//!   16 bits per packet, 128 bits total.
//! * **Raw-byte sequences** (CNN-L): the first [`RAW_BYTES_PER_PACKET`]
//!   payload bytes of each windowed packet — 480 bits per packet, 3840 bits
//!   total, the paper's headline input scale.

use crate::flow::{FlowState, PacketObs};

/// Number of packets per inference window (the paper uses 8, §7.3).
pub const WINDOW: usize = 8;
/// Raw payload bytes CNN-L extracts per packet (§6.3).
pub const RAW_BYTES_PER_PACKET: usize = 60;
/// Statistical feature vector length in bytes (128-bit input scale).
pub const STAT_FEATURES: usize = 16;

/// Quantizes a wire length (bytes) to 8 bits: `min(255, len >> 3)`.
///
/// Chosen to be *dataplane-exact*: a single right-shift ALU op computes it
/// on the switch, so host-extracted features match switch-extracted ones
/// bit for bit. Resolution is 8 bytes, saturating at 2040.
pub fn quantize_len(len: u16) -> u8 {
    (len >> 3).min(255) as u8
}

/// Quantizes an inter-packet delay (microseconds) to 8 bits on a log scale.
///
/// Dataplane-exact form: `code = 8*e + m` where `e = floor(log2(ipd))` and
/// `m` is the next 3 mantissa bits. On the switch this is one 32-entry
/// ternary leading-bit table selecting a per-exponent shift action — the
/// standard PISA log-quantizer. Values below 8 map to themselves; the code
/// saturates at 255 (IPD ≈ 2^31 µs ≈ 36 min).
pub fn quantize_ipd(ipd_micros: u64) -> u8 {
    if ipd_micros < 8 {
        return ipd_micros as u8;
    }
    let e = 63 - ipd_micros.leading_zeros() as u64; // >= 3
    let m = (ipd_micros >> (e - 3)) & 0x7;
    (8 * e + m).min(255) as u8
}

/// The 16-byte statistical feature vector for MLP-B / N3IC / Leo.
///
/// Layout (one byte each unless noted):
/// `[min_len, max_len, min_ipd, max_ipd, cur_len, cur_ipd,
///   proto, tcp_flags, src_port_hi, src_port_lo, dst_port_hi, dst_port_lo,
///   ttl, pkt_count (saturating), payload_len, reserved=0]`
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatFeatures(pub [u8; STAT_FEATURES]);

impl StatFeatures {
    /// Extracts statistical features after a packet was observed.
    #[allow(clippy::too_many_arguments)]
    pub fn extract(
        state: &FlowState,
        obs: &PacketObs,
        protocol: u8,
        tcp_flags: u8,
        src_port: u16,
        dst_port: u16,
        ttl: u8,
        payload_len: u16,
    ) -> Self {
        let min_ipd = if state.packets >= 2 { state.min_ipd } else { 0 };
        let max_ipd = if state.packets >= 2 { state.max_ipd } else { 0 };
        StatFeatures([
            quantize_len(state.min_len),
            quantize_len(state.max_len),
            quantize_ipd(min_ipd),
            quantize_ipd(max_ipd),
            quantize_len(obs.wire_len),
            quantize_ipd(obs.ipd_micros),
            protocol,
            tcp_flags,
            (src_port >> 8) as u8,
            (src_port & 0xff) as u8,
            (dst_port >> 8) as u8,
            (dst_port & 0xff) as u8,
            ttl,
            state.packets.min(255) as u8,
            quantize_len(payload_len),
            0,
        ])
    }

    /// Features as f32s for model input.
    pub fn to_f32(&self) -> Vec<f32> {
        self.0.iter().map(|&b| f32::from(b)).collect()
    }

    /// Input scale in bits (for Table 5's "Input Scale" column).
    pub const fn input_bits() -> usize {
        STAT_FEATURES * 8
    }
}

/// The per-window packet sequence for RNN-B / CNN-B / CNN-M / AutoEncoder:
/// `WINDOW` quantized (length, IPD) pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqFeatures {
    /// Quantized lengths, oldest first, exactly `WINDOW` entries.
    pub lens: Vec<u8>,
    /// Quantized IPDs, oldest first, exactly `WINDOW` entries.
    pub ipds: Vec<u8>,
}

impl SeqFeatures {
    /// Extracts the sequence from a full flow window. Returns `None` until
    /// the window holds `WINDOW` packets.
    pub fn extract(state: &FlowState) -> Option<Self> {
        if state.window.len() < WINDOW {
            return None;
        }
        let tail = &state.window[state.window.len() - WINDOW..];
        Some(SeqFeatures {
            lens: tail.iter().map(|o| quantize_len(o.wire_len)).collect(),
            ipds: tail.iter().map(|o| quantize_ipd(o.ipd_micros)).collect(),
        })
    }

    /// Interleaved `[len0, ipd0, len1, ipd1, ...]` as f32 for model input.
    pub fn to_f32_interleaved(&self) -> Vec<f32> {
        self.lens
            .iter()
            .zip(self.ipds.iter())
            .flat_map(|(&l, &i)| [f32::from(l), f32::from(i)])
            .collect()
    }

    /// Input scale in bits.
    pub const fn input_bits() -> usize {
        WINDOW * 16
    }
}

/// CNN-L's raw-byte window: first [`RAW_BYTES_PER_PACKET`] payload bytes of
/// each of the last [`WINDOW`] packets (zero-padded short payloads).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawBytesFeatures {
    /// `WINDOW * RAW_BYTES_PER_PACKET` bytes, oldest packet first.
    pub bytes: Vec<u8>,
}

impl RawBytesFeatures {
    /// Builds the feature block from per-packet payload snippets
    /// (oldest first; each snippet is truncated/zero-padded to
    /// `RAW_BYTES_PER_PACKET`).
    pub fn from_payloads(payloads: &[Vec<u8>]) -> Option<Self> {
        if payloads.len() < WINDOW {
            return None;
        }
        let tail = &payloads[payloads.len() - WINDOW..];
        let mut bytes = Vec::with_capacity(WINDOW * RAW_BYTES_PER_PACKET);
        for p in tail {
            let take = p.len().min(RAW_BYTES_PER_PACKET);
            bytes.extend_from_slice(&p[..take]);
            bytes.resize(bytes.len() + (RAW_BYTES_PER_PACKET - take), 0);
        }
        Some(RawBytesFeatures { bytes })
    }

    /// Bytes as f32 for model input.
    pub fn to_f32(&self) -> Vec<f32> {
        self.bytes.iter().map(|&b| f32::from(b)).collect()
    }

    /// Input scale in bits — 3840, the paper's headline number.
    pub const fn input_bits() -> usize {
        WINDOW * RAW_BYTES_PER_PACKET * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FiveTuple, FlowTracker};

    #[test]
    fn len_quantization_monotone_and_saturating() {
        assert_eq!(quantize_len(0), 0);
        assert!(quantize_len(100) < quantize_len(1000));
        assert_eq!(quantize_len(2040), 255);
        assert_eq!(quantize_len(9999), 255);
        // Dataplane-exact: one shift.
        for len in [0u16, 64, 1500, 4000] {
            assert_eq!(quantize_len(len), (len >> 3).min(255) as u8);
        }
    }

    #[test]
    fn ipd_quantization_log_scale() {
        assert_eq!(quantize_ipd(0), 0);
        assert_eq!(quantize_ipd(7), 7);
        let one_ms = quantize_ipd(1_000);
        let one_s = quantize_ipd(1_000_000);
        assert!(one_ms < one_s);
        // Log scale: x10 in time is a near-constant step in code space.
        let step1 = quantize_ipd(10_000) as i32 - quantize_ipd(1_000) as i32;
        let step2 = quantize_ipd(100_000) as i32 - quantize_ipd(10_000) as i32;
        assert!((step1 - step2).abs() <= 2, "{step1} vs {step2}");
        // Monotone over a broad sweep.
        let mut prev = 0u8;
        for i in 0..40 {
            let v = 1u64 << i.min(35);
            let c = quantize_ipd(v);
            assert!(c >= prev, "not monotone at {v}");
            prev = c;
        }
    }

    #[test]
    fn input_bit_scales_match_paper() {
        assert_eq!(StatFeatures::input_bits(), 128);
        assert_eq!(SeqFeatures::input_bits(), 128);
        assert_eq!(RawBytesFeatures::input_bits(), 3840);
    }

    fn tracked_flow(n_packets: usize) -> FlowTracker {
        let mut t = FlowTracker::new(WINDOW);
        let flow = FiveTuple::new(1, 2, 3, 4, 6);
        for i in 0..n_packets {
            t.observe(flow, (i as u64) * 1000, 100 + i as u16);
        }
        t
    }

    #[test]
    fn seq_features_require_full_window() {
        let t = tracked_flow(WINDOW - 1);
        let s = t.get(&FiveTuple::new(1, 2, 3, 4, 6)).unwrap();
        assert!(SeqFeatures::extract(s).is_none());
        let t = tracked_flow(WINDOW);
        let s = t.get(&FiveTuple::new(1, 2, 3, 4, 6)).unwrap();
        let f = SeqFeatures::extract(s).unwrap();
        assert_eq!(f.lens.len(), WINDOW);
        assert_eq!(f.to_f32_interleaved().len(), WINDOW * 2);
    }

    #[test]
    fn stat_features_encode_ports() {
        let t = tracked_flow(3);
        let s = t.get(&FiveTuple::new(1, 2, 3, 4, 6)).unwrap();
        let obs = *s.window.last().unwrap();
        let f = StatFeatures::extract(s, &obs, 6, 0x10, 0x1234, 443, 64, 50);
        assert_eq!(f.0[8], 0x12);
        assert_eq!(f.0[9], 0x34);
        assert_eq!(f.0[10], 0x01);
        assert_eq!(f.0[11], 0xbb);
        assert_eq!(f.0[6], 6);
        assert_eq!(f.to_f32().len(), 16);
    }

    #[test]
    fn raw_bytes_pad_and_truncate() {
        let mut payloads = vec![vec![1u8; 10]; WINDOW - 1];
        payloads.push(vec![2u8; 100]);
        let f = RawBytesFeatures::from_payloads(&payloads).unwrap();
        assert_eq!(f.bytes.len(), WINDOW * RAW_BYTES_PER_PACKET);
        // Short payload zero-padded.
        assert_eq!(f.bytes[10], 0);
        assert_eq!(f.bytes[9], 1);
        // Long payload truncated to 60.
        let last = &f.bytes[(WINDOW - 1) * RAW_BYTES_PER_PACKET..];
        assert!(last.iter().all(|&b| b == 2));
    }

    #[test]
    fn raw_bytes_need_full_window() {
        let payloads = vec![vec![0u8; 10]; WINDOW - 1];
        assert!(RawBytesFeatures::from_payloads(&payloads).is_none());
    }
}

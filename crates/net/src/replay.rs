//! Trace replay — the stand-in for the paper's tcpreplay server (§7.1).
//!
//! A [`Trace`] is an ordered sequence of timestamped packets belonging to
//! labeled flows. [`Replayer`] feeds them to any [`PacketSink`] in timestamp
//! order, optionally injecting faults (drops, truncation) the way the
//! smoltcp examples do — useful for robustness tests of the classifiers.
//!
//! [`PacketSource`] is the pull-side dual of [`PacketSink`]: anything that
//! can produce a timestamp-ordered packet stream — a materialized
//! [`Trace`] (via [`TraceSource`]), a synthetic on-the-fly generator
//! (`pegasus_datasets::SyntheticSource`), or in principle a live capture.
//! The streaming `PacketEngine` in `pegasus-core` consumes sources, so the
//! same deployment code serves replayed and generated traffic.

use crate::flow::FiveTuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One packet in a trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TracePacket {
    /// Arrival timestamp in microseconds.
    pub ts_micros: u64,
    /// Flow identity.
    pub flow: FiveTuple,
    /// On-wire length in bytes.
    pub wire_len: u16,
    /// First bytes of the L4 payload (enough for raw-byte features).
    pub payload_head: Vec<u8>,
    /// TCP flags (0 for UDP).
    pub tcp_flags: u8,
    /// IP TTL.
    pub ttl: u8,
}

/// A labeled packet trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Packets sorted by timestamp.
    pub packets: Vec<TracePacket>,
    /// Ground-truth class per flow (parallel maps are kept by the dataset
    /// layer; this is the per-trace subset).
    pub labels: Vec<(FiveTuple, usize)>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a packet (caller keeps timestamps non-decreasing or calls
    /// [`Trace::sort`] afterwards).
    pub fn push(&mut self, pkt: TracePacket) {
        self.packets.push(pkt);
    }

    /// Sorts packets by timestamp (stable, preserving per-flow order for
    /// equal stamps).
    pub fn sort(&mut self) {
        self.packets.sort_by_key(|p| p.ts_micros);
    }

    /// Ground-truth label of a flow, if known.
    pub fn label_of(&self, flow: &FiveTuple) -> Option<usize> {
        self.labels.iter().find(|(f, _)| f == flow).map(|(_, l)| *l)
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the trace has no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Distinct flows in the trace.
    pub fn flow_count(&self) -> usize {
        let mut flows: Vec<FiveTuple> = self.packets.iter().map(|p| p.flow).collect();
        flows.sort_unstable();
        flows.dedup();
        flows.len()
    }

    /// Merges another trace into this one and re-sorts.
    pub fn merge(&mut self, other: Trace) {
        self.packets.extend(other.packets);
        self.labels.extend(other.labels);
        self.sort();
    }
}

/// Consumer of replayed packets.
pub trait PacketSink {
    /// Called once per delivered packet, in timestamp order.
    fn on_packet(&mut self, pkt: &TracePacket);
}

impl<F: FnMut(&TracePacket)> PacketSink for F {
    fn on_packet(&mut self, pkt: &TracePacket) {
        self(pkt)
    }
}

/// Producer of a timestamp-ordered packet stream.
///
/// The streaming engine pulls packets one at a time; `None` ends the
/// stream. Implementations must emit packets in non-decreasing timestamp
/// order *per flow* (global order is expected but only per-flow order is
/// load-bearing: inter-packet delays are computed from consecutive packets
/// of the same flow).
pub trait PacketSource {
    /// The next packet, or `None` when the stream is exhausted.
    fn next_packet(&mut self) -> Option<TracePacket>;

    /// Total packets this source will emit, when known up front (used for
    /// progress reporting and queue sizing; `None` for unbounded sources).
    fn packets_hint(&self) -> Option<u64> {
        None
    }
}

/// One raw frame in flight: capture timestamp, original on-wire length,
/// and the captured bytes (borrowed — the byte-level dual of
/// [`TracePacket`]).
///
/// `wire_len` can exceed `bytes.len()` when the capture was snaplen-cut;
/// for live synthesis the two agree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawFrame<'a> {
    /// Arrival timestamp in microseconds.
    pub ts_micros: u64,
    /// Original on-wire length in bytes (≥ `bytes.len()`).
    pub wire_len: u32,
    /// The captured frame bytes.
    pub bytes: &'a [u8],
}

impl<'a> RawFrame<'a> {
    /// A frame whose capture is complete (`wire_len == bytes.len()`).
    pub fn new(ts_micros: u64, bytes: &'a [u8]) -> Self {
        RawFrame { ts_micros, wire_len: bytes.len().min(u32::MAX as usize) as u32, bytes }
    }

    /// The on-wire length clamped to the width [`TracePacket`] carries.
    pub fn wire_len_u16(&self) -> u16 {
        self.wire_len.min(u16::MAX as u32) as u16
    }
}

/// Producer of a timestamp-ordered *raw frame* stream — the byte-level
/// dual of [`PacketSource`], feeding the engine's bytes-to-verdict ingress
/// (`IngressHandle::push_frame`, `RawIngress`). Yielded frames borrow the
/// source's internal buffer, so a hot loop reads a pcap or synthesizes
/// traffic without per-packet allocation.
pub trait FrameSource {
    /// The next frame, or `None` when the stream is exhausted.
    fn next_frame(&mut self) -> Option<RawFrame<'_>>;

    /// Total frames this source will emit, when known up front.
    fn frames_hint(&self) -> Option<u64> {
        None
    }
}

/// A [`PacketSource`] reading a materialized [`Trace`] front to back.
pub struct TraceSource<'a> {
    trace: &'a Trace,
    next: usize,
}

impl<'a> TraceSource<'a> {
    /// A source over `trace` (which should be sorted; see [`Trace::sort`]).
    pub fn new(trace: &'a Trace) -> Self {
        TraceSource { trace, next: 0 }
    }
}

impl PacketSource for TraceSource<'_> {
    fn next_packet(&mut self) -> Option<TracePacket> {
        let pkt = self.trace.packets.get(self.next)?;
        self.next += 1;
        Some(pkt.clone())
    }

    fn packets_hint(&self) -> Option<u64> {
        Some((self.trace.packets.len() - self.next) as u64)
    }
}

impl Trace {
    /// A [`PacketSource`] over this trace's packets.
    pub fn source(&self) -> TraceSource<'_> {
        TraceSource::new(self)
    }
}

/// Fault-injection knobs for replay (mirroring the smoltcp example options).
#[derive(Clone, Copy, Debug)]
pub struct ReplayOptions {
    /// Probability of silently dropping each packet.
    pub drop_chance: f64,
    /// Probability of truncating a packet's payload head to half.
    pub truncate_chance: f64,
    /// RNG seed for fault injection.
    pub seed: u64,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions { drop_chance: 0.0, truncate_chance: 0.0, seed: 0 }
    }
}

/// Replays traces into sinks.
pub struct Replayer {
    options: ReplayOptions,
}

/// Statistics from one replay run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Packets delivered to the sink.
    pub delivered: u64,
    /// Packets dropped by fault injection.
    pub dropped: u64,
    /// Packets truncated by fault injection.
    pub truncated: u64,
}

impl Replayer {
    /// A replayer with no fault injection.
    pub fn new() -> Self {
        Replayer { options: ReplayOptions::default() }
    }

    /// A replayer with fault injection.
    pub fn with_options(options: ReplayOptions) -> Self {
        assert!((0.0..=1.0).contains(&options.drop_chance));
        assert!((0.0..=1.0).contains(&options.truncate_chance));
        Replayer { options }
    }

    /// Replays `trace` into `sink` in timestamp order.
    pub fn replay(&self, trace: &Trace, sink: &mut dyn PacketSink) -> ReplayStats {
        debug_assert!(
            trace.packets.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros),
            "trace must be sorted by timestamp"
        );
        self.replay_from(&mut trace.source(), sink)
    }

    /// Replays any [`PacketSource`] into `sink`, applying fault injection.
    pub fn replay_from(
        &self,
        source: &mut dyn PacketSource,
        sink: &mut dyn PacketSink,
    ) -> ReplayStats {
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let mut stats = ReplayStats::default();
        while let Some(pkt) = source.next_packet() {
            if self.options.drop_chance > 0.0 && rng.gen::<f64>() < self.options.drop_chance {
                stats.dropped += 1;
                continue;
            }
            if self.options.truncate_chance > 0.0 && rng.gen::<f64>() < self.options.truncate_chance
            {
                let mut cut = pkt;
                cut.payload_head.truncate(cut.payload_head.len() / 2);
                sink.on_packet(&cut);
                stats.truncated += 1;
                stats.delivered += 1;
                continue;
            }
            sink.on_packet(&pkt);
            stats.delivered += 1;
        }
        stats
    }
}

impl Default for Replayer {
    fn default() -> Self {
        Replayer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(ts: u64, flow_id: u32, len: u16) -> TracePacket {
        TracePacket {
            ts_micros: ts,
            flow: FiveTuple::new(flow_id, 2, 3, 4, 6),
            wire_len: len,
            payload_head: vec![0xaa; 16],
            tcp_flags: 0,
            ttl: 64,
        }
    }

    fn trace3() -> Trace {
        let mut t = Trace::new();
        t.push(pkt(30, 1, 300));
        t.push(pkt(10, 1, 100));
        t.push(pkt(20, 2, 200));
        t.sort();
        t.labels.push((FiveTuple::new(1, 2, 3, 4, 6), 0));
        t
    }

    #[test]
    fn sort_orders_by_timestamp() {
        let t = trace3();
        let ts: Vec<u64> = t.packets.iter().map(|p| p.ts_micros).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn replay_delivers_in_order() {
        let t = trace3();
        let mut seen = Vec::new();
        let mut sink = |p: &TracePacket| seen.push(p.ts_micros);
        let stats = Replayer::new().replay(&t, &mut sink);
        assert_eq!(seen, vec![10, 20, 30]);
        assert_eq!(stats.delivered, 3);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn drop_chance_drops_packets() {
        let mut t = Trace::new();
        for i in 0..1000 {
            t.push(pkt(i, 1, 100));
        }
        let mut count = 0u64;
        let mut sink = |_: &TracePacket| count += 1;
        let stats = Replayer::with_options(ReplayOptions {
            drop_chance: 0.5,
            truncate_chance: 0.0,
            seed: 7,
        })
        .replay(&t, &mut sink);
        assert_eq!(stats.delivered + stats.dropped, 1000);
        assert!(stats.dropped > 350 && stats.dropped < 650, "{stats:?}");
        assert_eq!(count, stats.delivered);
    }

    #[test]
    fn truncation_halves_payload() {
        let mut t = Trace::new();
        t.push(pkt(0, 1, 100));
        let mut got_len = None;
        let mut sink = |p: &TracePacket| got_len = Some(p.payload_head.len());
        let stats = Replayer::with_options(ReplayOptions {
            drop_chance: 0.0,
            truncate_chance: 1.0,
            seed: 1,
        })
        .replay(&t, &mut sink);
        assert_eq!(got_len, Some(8));
        assert_eq!(stats.truncated, 1);
    }

    #[test]
    fn flow_count_and_labels() {
        let t = trace3();
        assert_eq!(t.flow_count(), 2);
        assert_eq!(t.label_of(&FiveTuple::new(1, 2, 3, 4, 6)), Some(0));
        assert_eq!(t.label_of(&FiveTuple::new(9, 2, 3, 4, 6)), None);
    }

    #[test]
    fn trace_source_yields_all_packets_in_order() {
        let t = trace3();
        let mut src = t.source();
        assert_eq!(src.packets_hint(), Some(3));
        let mut ts = Vec::new();
        while let Some(p) = src.next_packet() {
            ts.push(p.ts_micros);
        }
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(src.packets_hint(), Some(0));
        assert!(src.next_packet().is_none());
    }

    #[test]
    fn replay_from_source_matches_replay() {
        let t = trace3();
        let mut a = Vec::new();
        let mut b = Vec::new();
        Replayer::new().replay(&t, &mut |p: &TracePacket| a.push(p.clone()));
        Replayer::new().replay_from(&mut t.source(), &mut |p: &TracePacket| b.push(p.clone()));
        assert_eq!(a, b);
    }

    #[test]
    fn merge_resorts() {
        let mut a = trace3();
        let mut b = Trace::new();
        b.push(pkt(5, 3, 50));
        a.merge(b);
        assert_eq!(a.packets[0].ts_micros, 5);
        assert_eq!(a.len(), 4);
    }
}

//! Classic pcap capture files — the trace format the paper's testbed
//! replays (§7.1).
//!
//! Implements the original libpcap file format (24-byte global header,
//! 16-byte per-record headers), read in **either byte order** (a capture
//! written on a big-endian box swaps its magic) and in both the
//! microsecond (`0xa1b2c3d4`) and nanosecond (`0xa1b23c4d`) timestamp
//! flavors; nanosecond stamps are converted to the microsecond clock the
//! rest of the stack runs on. Writing honors a configurable **snaplen**:
//! records longer than it are truncated with the original length preserved
//! in `orig_len`, exactly as tcpdump would capture them.
//!
//! Three layers:
//!
//! * [`PcapReader`] / [`PcapRecord`]: zero-copy record iteration over a
//!   borrowed byte buffer;
//! * [`PcapWriter`]: append records (with snaplen truncation) into an
//!   in-memory file, then [`into_bytes`](PcapWriter::into_bytes) or
//!   [`write_to`](PcapWriter::write_to) disk;
//! * [`PcapSource`]: an owned capture serving the engine as both a
//!   [`FrameSource`] (raw bytes, zero-copy) and a [`PacketSource`]
//!   (frames parsed through [`parse_frame`]
//!   into [`TracePacket`]s, unparseable records skipped and counted).

use crate::replay::{FrameSource, PacketSource, RawFrame, TracePacket};
use crate::wire::parse_frame;
use std::fmt;
use std::path::Path;

/// Magic of a microsecond-timestamp pcap, in the writer's byte order.
pub const PCAP_MAGIC_MICROS: u32 = 0xa1b2_c3d4;
/// Magic of a nanosecond-timestamp pcap.
pub const PCAP_MAGIC_NANOS: u32 = 0xa1b2_3c4d;
/// Link type 1: Ethernet (the only one the wire parser speaks).
pub const LINKTYPE_ETHERNET: u32 = 1;
/// The customary default snapshot length (no truncation in practice).
pub const DEFAULT_SNAPLEN: u32 = 65_535;

const GLOBAL_HEADER_LEN: usize = 24;
const RECORD_HEADER_LEN: usize = 16;

/// Errors from reading a pcap file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PcapError {
    /// The buffer ended inside a header or record body.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The magic number is not a classic-pcap magic in either byte order.
    BadMagic(u32),
    /// The capture's link type is not Ethernet.
    BadLinkType(u32),
    /// A filesystem error (opening or writing a capture).
    Io(String),
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::Truncated { what, needed, got } => {
                write!(f, "pcap {what}: need {needed} bytes, got {got}")
            }
            PcapError::BadMagic(m) => write!(f, "not a classic pcap file (magic {m:#010x})"),
            PcapError::BadLinkType(t) => {
                write!(f, "unsupported pcap link type {t} (want Ethernet)")
            }
            PcapError::Io(e) => write!(f, "pcap io: {e}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// One record: capture timestamp, original on-wire length, captured bytes
/// (borrowed — possibly fewer than `orig_len` under snaplen truncation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PcapRecord<'a> {
    /// Capture timestamp in microseconds.
    pub ts_micros: u64,
    /// Original on-wire frame length.
    pub orig_len: u32,
    /// The captured bytes (`incl_len` of them).
    pub data: &'a [u8],
}

impl PcapRecord<'_> {
    /// The record as a [`RawFrame`] for the engine's byte-level ingress.
    pub fn raw_frame(&self) -> RawFrame<'_> {
        RawFrame { ts_micros: self.ts_micros, wire_len: self.orig_len, bytes: self.data }
    }
}

/// Byte-order-aware field reads.
#[derive(Clone, Copy, Debug)]
struct Layout {
    big_endian: bool,
    nanos: bool,
    snaplen: u32,
}

impl Layout {
    fn u32_at(&self, data: &[u8], at: usize) -> u32 {
        let b = [data[at], data[at + 1], data[at + 2], data[at + 3]];
        if self.big_endian {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    }
}

fn parse_global_header(data: &[u8]) -> Result<Layout, PcapError> {
    if data.len() < GLOBAL_HEADER_LEN {
        return Err(PcapError::Truncated {
            what: "global header",
            needed: GLOBAL_HEADER_LEN,
            got: data.len(),
        });
    }
    let raw_magic = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    let (big_endian, nanos) = match raw_magic {
        PCAP_MAGIC_MICROS => (false, false),
        PCAP_MAGIC_NANOS => (false, true),
        m if m == PCAP_MAGIC_MICROS.swap_bytes() => (true, false),
        m if m == PCAP_MAGIC_NANOS.swap_bytes() => (true, true),
        m => return Err(PcapError::BadMagic(m)),
    };
    let mut layout = Layout { big_endian, nanos, snaplen: 0 };
    layout.snaplen = layout.u32_at(data, 16);
    let linktype = layout.u32_at(data, 20);
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::BadLinkType(linktype));
    }
    Ok(layout)
}

/// Reads records one at a time from a borrowed capture buffer (zero-copy).
pub struct PcapReader<'a> {
    data: &'a [u8],
    offset: usize,
    layout: Layout,
}

impl<'a> PcapReader<'a> {
    /// Parses the global header and positions at the first record.
    pub fn new(data: &'a [u8]) -> Result<Self, PcapError> {
        let layout = parse_global_header(data)?;
        Ok(PcapReader { data, offset: GLOBAL_HEADER_LEN, layout })
    }

    /// The capture's snapshot length.
    pub fn snaplen(&self) -> u32 {
        self.layout.snaplen
    }

    /// True when the capture was written big-endian.
    pub fn is_big_endian(&self) -> bool {
        self.layout.big_endian
    }

    /// The next record; `None` at a clean end of file, `Some(Err(_))` on a
    /// record header or body that runs past the buffer. A malformed record
    /// ends the stream: the error is reported once and subsequent calls
    /// return `None` (record framing cannot be resynchronized past a bad
    /// length field), so error-skipping read loops terminate.
    #[allow(clippy::should_implement_trait)] // lending iteration, not Iterator
    pub fn next_record(&mut self) -> Option<Result<PcapRecord<'a>, PcapError>> {
        if self.offset == self.data.len() {
            return None;
        }
        let record = self.read_record();
        if record.is_err() {
            self.offset = self.data.len();
        }
        Some(record)
    }

    fn read_record(&mut self) -> Result<PcapRecord<'a>, PcapError> {
        let rest = self.data.len() - self.offset;
        if rest < RECORD_HEADER_LEN {
            return Err(PcapError::Truncated {
                what: "record header",
                needed: RECORD_HEADER_LEN,
                got: rest,
            });
        }
        let at = self.offset;
        let sec = u64::from(self.layout.u32_at(self.data, at));
        let frac = u64::from(self.layout.u32_at(self.data, at + 4));
        let incl_len = self.layout.u32_at(self.data, at + 8) as usize;
        let orig_len = self.layout.u32_at(self.data, at + 12);
        let body = at + RECORD_HEADER_LEN;
        if self.data.len() - body < incl_len {
            return Err(PcapError::Truncated {
                what: "record body",
                needed: incl_len,
                got: self.data.len() - body,
            });
        }
        self.offset = body + incl_len;
        let micros = if self.layout.nanos { frac / 1000 } else { frac };
        Ok(PcapRecord {
            ts_micros: sec * 1_000_000 + micros,
            orig_len,
            data: &self.data[body..body + incl_len],
        })
    }
}

/// Builds a classic pcap file in memory, snaplen-truncating records.
pub struct PcapWriter {
    buf: Vec<u8>,
    snaplen: u32,
    big_endian: bool,
    records: u64,
}

impl Default for PcapWriter {
    fn default() -> Self {
        PcapWriter::new()
    }
}

impl PcapWriter {
    /// A little-endian microsecond writer with [`DEFAULT_SNAPLEN`].
    pub fn new() -> Self {
        PcapWriter::with_snaplen(DEFAULT_SNAPLEN)
    }

    /// A writer that truncates captured bytes at `snaplen` (the original
    /// length is still recorded per record, as tcpdump does).
    pub fn with_snaplen(snaplen: u32) -> Self {
        let mut w = PcapWriter { buf: Vec::new(), snaplen, big_endian: false, records: 0 };
        w.write_global_header();
        w
    }

    /// A big-endian writer (as a big-endian capture box would produce) —
    /// the reader handles both, which the round-trip tests exploit.
    pub fn big_endian(snaplen: u32) -> Self {
        let mut w = PcapWriter { buf: Vec::new(), snaplen, big_endian: true, records: 0 };
        w.write_global_header();
        w
    }

    fn put_u32(&mut self, v: u32) {
        if self.big_endian {
            self.buf.extend_from_slice(&v.to_be_bytes());
        } else {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn put_u16(&mut self, v: u16) {
        if self.big_endian {
            self.buf.extend_from_slice(&v.to_be_bytes());
        } else {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn write_global_header(&mut self) {
        self.put_u32(PCAP_MAGIC_MICROS);
        self.put_u16(2); // version major
        self.put_u16(4); // version minor
        self.put_u32(0); // thiszone
        self.put_u32(0); // sigfigs
        let snaplen = self.snaplen;
        self.put_u32(snaplen);
        self.put_u32(LINKTYPE_ETHERNET);
    }

    /// Appends one frame (original length = `frame.len()`, captured bytes
    /// truncated at the snaplen).
    pub fn record(&mut self, ts_micros: u64, frame: &[u8]) {
        self.record_with_orig_len(ts_micros, frame, frame.len().min(u32::MAX as usize) as u32);
    }

    /// Appends one frame with an explicit original on-wire length (for
    /// re-writing records that were already snaplen-cut at capture time).
    pub fn record_with_orig_len(&mut self, ts_micros: u64, frame: &[u8], orig_len: u32) {
        let incl = frame.len().min(self.snaplen as usize);
        self.put_u32((ts_micros / 1_000_000).min(u64::from(u32::MAX)) as u32);
        self.put_u32((ts_micros % 1_000_000) as u32);
        self.put_u32(incl as u32);
        self.put_u32(orig_len);
        self.buf.extend_from_slice(&frame[..incl]);
        self.records += 1;
    }

    /// Records appended so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// The finished capture file bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes the capture to disk.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), PcapError> {
        std::fs::write(path, &self.buf).map_err(|e| PcapError::Io(e.to_string()))
    }
}

/// An owned capture the engine can stream — raw bytes via [`FrameSource`],
/// parsed [`TracePacket`]s via [`PacketSource`].
///
/// In packet mode, records the wire parser rejects are *skipped* and
/// counted ([`parse_errors`](PcapSource::parse_errors)) — a capture of
/// real traffic always contains ARP, ICMP and the odd mangled frame. In
/// frame mode every record is handed to the engine, whose own ingress
/// counters do the bucketing. A malformed *file structure* (truncated
/// record) ends the stream; [`error`](PcapSource::error) reports it.
pub struct PcapSource {
    data: Vec<u8>,
    offset: usize,
    layout: Layout,
    total_records: u64,
    read_records: u64,
    parse_errors: u64,
    error: Option<PcapError>,
}

impl PcapSource {
    /// Wraps a capture file's bytes (validating the global header and
    /// pre-counting records for [`frames_hint`](FrameSource::frames_hint)).
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, PcapError> {
        let layout = parse_global_header(&data)?;
        let mut reader = PcapReader { data: &data, offset: GLOBAL_HEADER_LEN, layout };
        let mut total = 0u64;
        while let Some(Ok(_)) = reader.next_record() {
            total += 1;
        }
        Ok(PcapSource {
            data,
            offset: GLOBAL_HEADER_LEN,
            layout,
            total_records: total,
            read_records: 0,
            parse_errors: 0,
            error: None,
        })
    }

    /// Opens and wraps a capture file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PcapError> {
        let data = std::fs::read(path).map_err(|e| PcapError::Io(e.to_string()))?;
        PcapSource::from_bytes(data)
    }

    /// Rewinds to the first record (counters keep accumulating).
    pub fn rewind(&mut self) {
        self.offset = GLOBAL_HEADER_LEN;
        self.read_records = 0;
        self.error = None;
    }

    /// Records skipped by packet mode because the wire parser rejected
    /// them.
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors
    }

    /// The file-structure error that ended the stream early, if any.
    pub fn error(&self) -> Option<&PcapError> {
        self.error.as_ref()
    }

    /// The capture's snapshot length.
    pub fn snaplen(&self) -> u32 {
        self.layout.snaplen
    }

    /// Total well-formed records in the capture.
    pub fn records(&self) -> u64 {
        self.total_records
    }

    /// Advances past the next record, returning `(ts_micros, orig_len,
    /// body_start, body_end)` — bounds instead of a borrow, so both source
    /// impls can re-slice the owned buffer afterwards.
    fn next_record_bounds(&mut self) -> Option<(u64, u32, usize, usize)> {
        if self.error.is_some() || self.offset == self.data.len() {
            return None;
        }
        let mut reader = PcapReader { data: &self.data, offset: self.offset, layout: self.layout };
        match reader.read_record() {
            Ok(rec) => {
                let end = reader.offset;
                let start = end - rec.data.len();
                let (ts, orig) = (rec.ts_micros, rec.orig_len);
                self.offset = end;
                self.read_records += 1;
                Some((ts, orig, start, end))
            }
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

impl FrameSource for PcapSource {
    fn next_frame(&mut self) -> Option<RawFrame<'_>> {
        let (ts_micros, wire_len, start, end) = self.next_record_bounds()?;
        Some(RawFrame { ts_micros, wire_len, bytes: &self.data[start..end] })
    }

    fn frames_hint(&self) -> Option<u64> {
        Some(self.total_records - self.read_records.min(self.total_records))
    }
}

impl PacketSource for PcapSource {
    fn next_packet(&mut self) -> Option<TracePacket> {
        loop {
            let (ts, orig_len, start, end) = self.next_record_bounds()?;
            match parse_frame(&self.data[start..end]) {
                Ok(frame) => {
                    return Some(
                        frame.to_trace_packet(ts, orig_len.min(u32::from(u16::MAX)) as u16),
                    )
                }
                Err(_) => self.parse_errors += 1,
            }
        }
    }

    fn packets_hint(&self) -> Option<u64> {
        // Upper bound: unparseable records are skipped.
        Some(self.total_records - self.read_records.min(self.total_records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{build_frame, FrameSpec};

    fn two_frame_capture(snaplen: u32, big_endian: bool) -> Vec<u8> {
        let f1 = build_frame(&FrameSpec::v4_udp(1, 2, 10, 20, vec![0xaa; 40]));
        let f2 = build_frame(&FrameSpec::v4_tcp(3, 4, 30, 40, vec![0xbb; 200]));
        let mut w = if big_endian {
            PcapWriter::big_endian(snaplen)
        } else {
            PcapWriter::with_snaplen(snaplen)
        };
        w.record(1_000_000, &f1);
        w.record(1_000_500, &f2);
        assert_eq!(w.records_written(), 2);
        w.into_bytes()
    }

    #[test]
    fn write_read_round_trip_both_endiannesses() {
        for be in [false, true] {
            let bytes = two_frame_capture(DEFAULT_SNAPLEN, be);
            let mut r = PcapReader::new(&bytes).expect("header parses");
            assert_eq!(r.is_big_endian(), be);
            assert_eq!(r.snaplen(), DEFAULT_SNAPLEN);
            let r1 = r.next_record().expect("one").expect("ok");
            assert_eq!(r1.ts_micros, 1_000_000);
            assert_eq!(r1.orig_len as usize, r1.data.len());
            let r2 = r.next_record().expect("two").expect("ok");
            assert_eq!(r2.ts_micros, 1_000_500);
            assert!(r.next_record().is_none());
        }
    }

    #[test]
    fn snaplen_truncates_but_preserves_orig_len() {
        let bytes = two_frame_capture(96, false);
        let mut r = PcapReader::new(&bytes).expect("header");
        let r1 = r.next_record().unwrap().unwrap();
        assert!(r1.data.len() <= 96);
        let r2 = r.next_record().unwrap().unwrap();
        assert_eq!(r2.data.len(), 96);
        assert_eq!(r2.orig_len as usize, 14 + 20 + 20 + 200);
        assert!(r2.raw_frame().wire_len as usize > r2.data.len());
    }

    #[test]
    fn rewrite_is_byte_identical() {
        for be in [false, true] {
            let bytes = two_frame_capture(96, be);
            let mut r = PcapReader::new(&bytes).expect("header");
            let mut w = if be { PcapWriter::big_endian(96) } else { PcapWriter::with_snaplen(96) };
            while let Some(rec) = r.next_record() {
                let rec = rec.expect("well-formed");
                w.record_with_orig_len(rec.ts_micros, rec.data, rec.orig_len);
            }
            assert_eq!(w.into_bytes(), bytes, "read→write must reproduce the capture");
        }
    }

    #[test]
    fn bad_magic_and_truncation_are_typed() {
        assert_eq!(
            PcapReader::new(&[0u8; 10]).err(),
            Some(PcapError::Truncated { what: "global header", needed: 24, got: 10 })
        );
        let mut junk = two_frame_capture(DEFAULT_SNAPLEN, false);
        junk[0] = 0xff;
        assert!(matches!(PcapReader::new(&junk), Err(PcapError::BadMagic(_))));
        let cut = two_frame_capture(DEFAULT_SNAPLEN, false);
        let cut = &cut[..cut.len() - 5];
        let mut r = PcapReader::new(cut).expect("header");
        let _ = r.next_record().unwrap().unwrap();
        assert!(matches!(
            r.next_record(),
            Some(Err(PcapError::Truncated { what: "record body", .. }))
        ));
        // The error ends the stream: an error-skipping read loop must
        // terminate instead of receiving the same Err forever.
        assert!(r.next_record().is_none());
    }

    #[test]
    fn nanosecond_magic_converts_to_micros() {
        let mut bytes = two_frame_capture(DEFAULT_SNAPLEN, false);
        bytes[0..4].copy_from_slice(&PCAP_MAGIC_NANOS.to_le_bytes());
        let mut r = PcapReader::new(&bytes).expect("header");
        // The µs fraction field is now read as nanoseconds: 0 stays 0,
        // 500 ns floors to 0 µs.
        assert_eq!(r.next_record().unwrap().unwrap().ts_micros, 1_000_000);
        assert_eq!(r.next_record().unwrap().unwrap().ts_micros, 1_000_000);
    }

    #[test]
    fn source_serves_frames_and_packets() {
        let bytes = two_frame_capture(DEFAULT_SNAPLEN, false);
        let mut src = PcapSource::from_bytes(bytes).expect("source");
        assert_eq!(src.records(), 2);
        assert_eq!(FrameSource::frames_hint(&src), Some(2));
        let mut n = 0;
        while src.next_frame().is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
        src.rewind();
        let p1 = PacketSource::next_packet(&mut src).expect("packet");
        assert_eq!(p1.flow.src_port, 10);
        assert_eq!(p1.wire_len as usize, 14 + 20 + 8 + 40);
        let p2 = PacketSource::next_packet(&mut src).expect("packet");
        assert_eq!(p2.tcp_flags, 0x10);
        assert!(PacketSource::next_packet(&mut src).is_none());
        assert_eq!(src.parse_errors(), 0);
    }

    #[test]
    fn packet_mode_skips_and_counts_unparseable_records() {
        let good = build_frame(&FrameSpec::v4_udp(1, 2, 3, 4, vec![7; 8]));
        let mut w = PcapWriter::new();
        w.record(0, &[0xde, 0xad, 0xbe, 0xef]); // far too short for Ethernet
        w.record(1, &good);
        let mut arp = good.clone();
        arp[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
        w.record(2, &arp);
        let mut src = PcapSource::from_bytes(w.into_bytes()).expect("source");
        let pkts: Vec<TracePacket> =
            std::iter::from_fn(|| PacketSource::next_packet(&mut src)).collect();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].ts_micros, 1);
        assert_eq!(src.parse_errors(), 2);
        assert!(src.error().is_none());
    }
}

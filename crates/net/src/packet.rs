//! Packet header parsing and construction (Ethernet / IPv4 / TCP / UDP).
//!
//! The replay engine feeds the switch simulator from traces of real-looking
//! packets, so headers are built and parsed byte-exactly, including internet
//! checksums. Buffers use [`bytes`] to avoid copies on the hot path.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// IANA protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IANA protocol number for UDP.
pub const PROTO_UDP: u8 = 17;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// Errors from packet parsing.
///
/// Shared by the legacy [`parse_packet`] and the zero-copy
/// [`parse_frame`](crate::wire::parse_frame): every malformed input maps to
/// exactly one variant, and the engine's ingress counters bucket them by
/// [`kind`](ParseError::kind).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the header being parsed.
    Truncated {
        /// Which header was being parsed.
        layer: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Unsupported EtherType (IPv4/IPv6 are parsed; ARP etc. are not).
    UnsupportedEtherType(u16),
    /// Unsupported IP protocol (only TCP/UDP carry flows here).
    UnsupportedProtocol(u8),
    /// IPv4 header checksum mismatch.
    BadChecksum,
    /// More than one 802.1Q tag (QinQ / provider bridging) — the dataplane
    /// parser pops exactly one customer tag, like the paper's P4 parser.
    NestedVlan,
    /// Malformed field (e.g. IHL < 5).
    Malformed(&'static str),
}

/// Coarse buckets the engine's ingress counters track parse failures in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParseErrorKind {
    /// A header (or required options) ran past the end of the capture.
    Truncated,
    /// IPv4 header checksum mismatch.
    Checksum,
    /// A structurally invalid field (bad IHL, bad version, nested VLAN…).
    Malformed,
    /// A layer the parser does not speak (EtherType or IP protocol).
    Unsupported,
}

impl ParseError {
    /// The coarse counter bucket this error belongs to.
    pub fn kind(&self) -> ParseErrorKind {
        match self {
            ParseError::Truncated { .. } => ParseErrorKind::Truncated,
            ParseError::BadChecksum => ParseErrorKind::Checksum,
            ParseError::Malformed(_) | ParseError::NestedVlan => ParseErrorKind::Malformed,
            ParseError::UnsupportedEtherType(_) | ParseError::UnsupportedProtocol(_) => {
                ParseErrorKind::Unsupported
            }
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { layer, needed, got } => {
                write!(f, "{layer}: need {needed} bytes, got {got}")
            }
            ParseError::UnsupportedEtherType(t) => write!(f, "unsupported ethertype {t:#06x}"),
            ParseError::UnsupportedProtocol(p) => write!(f, "unsupported ip protocol {p}"),
            ParseError::BadChecksum => write!(f, "bad IPv4 header checksum"),
            ParseError::NestedVlan => write!(f, "nested 802.1Q tags (QinQ)"),
            ParseError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed packet: the headers plus the L4 payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedPacket {
    /// Destination MAC.
    pub dst_mac: [u8; 6],
    /// Source MAC.
    pub src_mac: [u8; 6],
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// IP protocol (TCP or UDP).
    pub protocol: u8,
    /// IPv4 TTL.
    pub ttl: u8,
    /// Source L4 port.
    pub src_port: u16,
    /// Destination L4 port.
    pub dst_port: u16,
    /// TCP flags (0 for UDP).
    pub tcp_flags: u8,
    /// L4 payload bytes.
    pub payload: Bytes,
    /// Total on-wire length in bytes (including Ethernet header).
    pub wire_len: usize,
}

/// Specification for building a packet.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PacketSpec {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source L4 port.
    pub src_port: u16,
    /// Destination L4 port.
    pub dst_port: u16,
    /// TCP or UDP.
    pub protocol: u8,
    /// TCP flags (ignored for UDP).
    pub tcp_flags: u8,
    /// IPv4 TTL.
    pub ttl: u8,
    /// Payload content.
    pub payload: Vec<u8>,
}

impl PacketSpec {
    /// A plain UDP packet spec.
    pub fn udp(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        PacketSpec {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: PROTO_UDP,
            tcp_flags: 0,
            ttl: 64,
            payload,
        }
    }

    /// A plain TCP packet spec (flags default to ACK).
    pub fn tcp(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        PacketSpec {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: PROTO_TCP,
            tcp_flags: 0x10,
            ttl: 64,
            payload,
        }
    }
}

/// RFC 1071 internet checksum over a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Builds a full Ethernet/IPv4/{TCP,UDP} frame.
///
/// A thin owned-buffer wrapper over the wire module's
/// [`build_frame`](crate::wire::build_frame) — one encoder for the whole
/// crate; this entry point keeps the historical [`PacketSpec`]/[`Bytes`]
/// shape.
pub fn build_packet(spec: &PacketSpec) -> Bytes {
    assert!(spec.protocol == PROTO_TCP || spec.protocol == PROTO_UDP, "only TCP/UDP supported");
    let frame = crate::wire::build_frame(&crate::wire::FrameSpec {
        vlan: None,
        ip: crate::wire::IpAddrs::V4 { src: spec.src_ip, dst: spec.dst_ip },
        src_port: spec.src_port,
        dst_port: spec.dst_port,
        protocol: spec.protocol,
        tcp_flags: spec.tcp_flags,
        ttl: spec.ttl,
        payload: spec.payload.clone(),
    });
    Bytes::from(frame)
}

/// Parses an Ethernet/IPv4/{TCP,UDP} frame built by [`build_packet`] (or
/// any conforming frame).
///
/// Delegates to the zero-copy [`parse_frame`](crate::wire::parse_frame)
/// (one parser for the whole crate, covered by the same fuzz corpus) but
/// keeps this entry point's historical IPv4-only contract: a VLAN tag or
/// IPv6 frame — which the wire module parses happily — is rejected here
/// with [`ParseError::UnsupportedEtherType`], and the result is an owned
/// [`ParsedPacket`] with MACs and a copied payload.
pub fn parse_packet(data: &[u8]) -> Result<ParsedPacket, ParseError> {
    if data.len() < 14 {
        return Err(ParseError::Truncated { layer: "ethernet", needed: 14, got: data.len() });
    }
    let ethertype = u16::from_be_bytes([data[12], data[13]]);
    if ethertype != ETHERTYPE_IPV4 {
        return Err(ParseError::UnsupportedEtherType(ethertype));
    }
    let frame = crate::wire::parse_frame(data)?;
    let mut dst_mac = [0u8; 6];
    let mut src_mac = [0u8; 6];
    dst_mac.copy_from_slice(&data[0..6]);
    src_mac.copy_from_slice(&data[6..12]);
    Ok(ParsedPacket {
        dst_mac,
        src_mac,
        src_ip: frame.flow.src_ip,
        dst_ip: frame.flow.dst_ip,
        protocol: frame.flow.protocol,
        ttl: frame.ttl,
        src_port: frame.flow.src_port,
        dst_port: frame.flow.dst_port,
        tcp_flags: frame.tcp_flags,
        payload: Bytes::copy_from_slice(frame.payload),
        wire_len: data.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_round_trip() {
        let spec = PacketSpec::udp(0x0a000001, 0x0a000002, 1234, 53, b"hello".to_vec());
        let frame = build_packet(&spec);
        let p = parse_packet(&frame).unwrap();
        assert_eq!(p.src_ip, 0x0a000001);
        assert_eq!(p.dst_ip, 0x0a000002);
        assert_eq!(p.src_port, 1234);
        assert_eq!(p.dst_port, 53);
        assert_eq!(p.protocol, PROTO_UDP);
        assert_eq!(&p.payload[..], b"hello");
        assert_eq!(p.wire_len, 14 + 20 + 8 + 5);
    }

    #[test]
    fn tcp_round_trip_with_flags() {
        let mut spec = PacketSpec::tcp(1, 2, 443, 50000, vec![0xab; 100]);
        spec.tcp_flags = 0x18; // PSH|ACK
        let frame = build_packet(&spec);
        let p = parse_packet(&frame).unwrap();
        assert_eq!(p.tcp_flags, 0x18);
        assert_eq!(p.payload.len(), 100);
        assert_eq!(p.wire_len, 14 + 20 + 20 + 100);
    }

    #[test]
    fn checksum_detects_corruption() {
        let spec = PacketSpec::udp(1, 2, 3, 4, vec![]);
        let frame = build_packet(&spec);
        let mut bad = frame.to_vec();
        bad[14 + 8] ^= 0xff; // flip TTL
        assert_eq!(parse_packet(&bad), Err(ParseError::BadChecksum));
    }

    #[test]
    fn truncated_frames_rejected() {
        let spec = PacketSpec::udp(1, 2, 3, 4, vec![]);
        let frame = build_packet(&spec);
        for cut in [3usize, 20, 30] {
            let err = parse_packet(&frame[..cut]).unwrap_err();
            assert!(matches!(err, ParseError::Truncated { .. }), "cut={cut}: {err:?}");
        }
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut frame = build_packet(&PacketSpec::udp(1, 2, 3, 4, vec![])).to_vec();
        frame[12] = 0x86; // 0x86dd = IPv6
        frame[13] = 0xdd;
        assert_eq!(parse_packet(&frame), Err(ParseError::UnsupportedEtherType(0x86dd)));
    }

    #[test]
    fn checksum_rfc1071_example() {
        // Classic example: checksum of its own complement region is 0.
        let data = [0x45u8, 0x00, 0x00, 0x34];
        let c = internet_checksum(&data);
        let mut with = data.to_vec();
        with.extend_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn odd_length_checksum() {
        let c1 = internet_checksum(&[0xff, 0x00, 0xab]);
        let c2 = internet_checksum(&[0xff, 0x00, 0xab, 0x00]);
        assert_eq!(c1, c2);
    }
}

//! Packet header parsing and construction (Ethernet / IPv4 / TCP / UDP).
//!
//! The replay engine feeds the switch simulator from traces of real-looking
//! packets, so headers are built and parsed byte-exactly, including internet
//! checksums. Buffers use [`bytes`] to avoid copies on the hot path.

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// IANA protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IANA protocol number for UDP.
pub const PROTO_UDP: u8 = 17;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// Errors from packet parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the header being parsed.
    Truncated {
        /// Which header was being parsed.
        layer: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Unsupported EtherType (only IPv4 is parsed).
    UnsupportedEtherType(u16),
    /// Unsupported IP protocol (only TCP/UDP carry flows here).
    UnsupportedProtocol(u8),
    /// IPv4 header checksum mismatch.
    BadChecksum,
    /// Malformed field (e.g. IHL < 5).
    Malformed(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { layer, needed, got } => {
                write!(f, "{layer}: need {needed} bytes, got {got}")
            }
            ParseError::UnsupportedEtherType(t) => write!(f, "unsupported ethertype {t:#06x}"),
            ParseError::UnsupportedProtocol(p) => write!(f, "unsupported ip protocol {p}"),
            ParseError::BadChecksum => write!(f, "bad IPv4 header checksum"),
            ParseError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed packet: the headers plus the L4 payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedPacket {
    /// Destination MAC.
    pub dst_mac: [u8; 6],
    /// Source MAC.
    pub src_mac: [u8; 6],
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// IP protocol (TCP or UDP).
    pub protocol: u8,
    /// IPv4 TTL.
    pub ttl: u8,
    /// Source L4 port.
    pub src_port: u16,
    /// Destination L4 port.
    pub dst_port: u16,
    /// TCP flags (0 for UDP).
    pub tcp_flags: u8,
    /// L4 payload bytes.
    pub payload: Bytes,
    /// Total on-wire length in bytes (including Ethernet header).
    pub wire_len: usize,
}

/// Specification for building a packet.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PacketSpec {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source L4 port.
    pub src_port: u16,
    /// Destination L4 port.
    pub dst_port: u16,
    /// TCP or UDP.
    pub protocol: u8,
    /// TCP flags (ignored for UDP).
    pub tcp_flags: u8,
    /// IPv4 TTL.
    pub ttl: u8,
    /// Payload content.
    pub payload: Vec<u8>,
}

impl PacketSpec {
    /// A plain UDP packet spec.
    pub fn udp(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        PacketSpec {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: PROTO_UDP,
            tcp_flags: 0,
            ttl: 64,
            payload,
        }
    }

    /// A plain TCP packet spec (flags default to ACK).
    pub fn tcp(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        PacketSpec {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: PROTO_TCP,
            tcp_flags: 0x10,
            ttl: 64,
            payload,
        }
    }
}

/// RFC 1071 internet checksum over a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Builds a full Ethernet/IPv4/{TCP,UDP} frame.
pub fn build_packet(spec: &PacketSpec) -> Bytes {
    assert!(spec.protocol == PROTO_TCP || spec.protocol == PROTO_UDP, "only TCP/UDP supported");
    let l4_header_len = if spec.protocol == PROTO_TCP { 20 } else { 8 };
    let ip_total = 20 + l4_header_len + spec.payload.len();
    let mut buf = BytesMut::with_capacity(14 + ip_total);

    // Ethernet.
    buf.put_slice(&[0x02, 0, 0, 0, 0, 0x01]); // dst
    buf.put_slice(&[0x02, 0, 0, 0, 0, 0x02]); // src
    buf.put_u16(ETHERTYPE_IPV4);

    // IPv4 header (no options).
    let ip_start = buf.len();
    buf.put_u8(0x45); // version 4, IHL 5
    buf.put_u8(0); // TOS
    buf.put_u16(ip_total as u16);
    buf.put_u16(0x1234); // identification
    buf.put_u16(0x4000); // don't fragment
    buf.put_u8(spec.ttl);
    buf.put_u8(spec.protocol);
    buf.put_u16(0); // checksum placeholder
    buf.put_u32(spec.src_ip);
    buf.put_u32(spec.dst_ip);
    let csum = internet_checksum(&buf[ip_start..ip_start + 20]);
    buf[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());

    // L4 header.
    if spec.protocol == PROTO_TCP {
        buf.put_u16(spec.src_port);
        buf.put_u16(spec.dst_port);
        buf.put_u32(1); // seq
        buf.put_u32(1); // ack
        buf.put_u8(0x50); // data offset 5
        buf.put_u8(spec.tcp_flags);
        buf.put_u16(0xffff); // window
        buf.put_u16(0); // checksum left zero (not validated on replay)
        buf.put_u16(0); // urgent
    } else {
        buf.put_u16(spec.src_port);
        buf.put_u16(spec.dst_port);
        buf.put_u16((8 + spec.payload.len()) as u16);
        buf.put_u16(0); // checksum optional for IPv4 UDP
    }
    buf.put_slice(&spec.payload);
    buf.freeze()
}

/// Parses an Ethernet/IPv4/{TCP,UDP} frame built by [`build_packet`] (or any
/// conforming frame without IP options).
pub fn parse_packet(data: &[u8]) -> Result<ParsedPacket, ParseError> {
    let wire_len = data.len();
    if data.len() < 14 {
        return Err(ParseError::Truncated { layer: "ethernet", needed: 14, got: data.len() });
    }
    let mut dst_mac = [0u8; 6];
    let mut src_mac = [0u8; 6];
    dst_mac.copy_from_slice(&data[0..6]);
    src_mac.copy_from_slice(&data[6..12]);
    let ethertype = u16::from_be_bytes([data[12], data[13]]);
    if ethertype != ETHERTYPE_IPV4 {
        return Err(ParseError::UnsupportedEtherType(ethertype));
    }
    let ip = &data[14..];
    if ip.len() < 20 {
        return Err(ParseError::Truncated { layer: "ipv4", needed: 20, got: ip.len() });
    }
    if ip[0] >> 4 != 4 {
        return Err(ParseError::Malformed("ip version"));
    }
    let ihl = (ip[0] & 0x0f) as usize * 4;
    if ihl < 20 {
        return Err(ParseError::Malformed("ihl"));
    }
    if ip.len() < ihl {
        return Err(ParseError::Truncated { layer: "ipv4 options", needed: ihl, got: ip.len() });
    }
    if internet_checksum(&ip[..ihl]) != 0 {
        return Err(ParseError::BadChecksum);
    }
    let ttl = ip[8];
    let protocol = ip[9];
    let src_ip = u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]);
    let dst_ip = u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]);
    let l4 = &ip[ihl..];
    let (src_port, dst_port, tcp_flags, payload_off) = match protocol {
        PROTO_TCP => {
            if l4.len() < 20 {
                return Err(ParseError::Truncated { layer: "tcp", needed: 20, got: l4.len() });
            }
            let off = ((l4[12] >> 4) as usize) * 4;
            if off < 20 || l4.len() < off {
                return Err(ParseError::Malformed("tcp data offset"));
            }
            (u16::from_be_bytes([l4[0], l4[1]]), u16::from_be_bytes([l4[2], l4[3]]), l4[13], off)
        }
        PROTO_UDP => {
            if l4.len() < 8 {
                return Err(ParseError::Truncated { layer: "udp", needed: 8, got: l4.len() });
            }
            (u16::from_be_bytes([l4[0], l4[1]]), u16::from_be_bytes([l4[2], l4[3]]), 0, 8)
        }
        other => return Err(ParseError::UnsupportedProtocol(other)),
    };
    Ok(ParsedPacket {
        dst_mac,
        src_mac,
        src_ip,
        dst_ip,
        protocol,
        ttl,
        src_port,
        dst_port,
        tcp_flags,
        payload: Bytes::copy_from_slice(&l4[payload_off..]),
        wire_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_round_trip() {
        let spec = PacketSpec::udp(0x0a000001, 0x0a000002, 1234, 53, b"hello".to_vec());
        let frame = build_packet(&spec);
        let p = parse_packet(&frame).unwrap();
        assert_eq!(p.src_ip, 0x0a000001);
        assert_eq!(p.dst_ip, 0x0a000002);
        assert_eq!(p.src_port, 1234);
        assert_eq!(p.dst_port, 53);
        assert_eq!(p.protocol, PROTO_UDP);
        assert_eq!(&p.payload[..], b"hello");
        assert_eq!(p.wire_len, 14 + 20 + 8 + 5);
    }

    #[test]
    fn tcp_round_trip_with_flags() {
        let mut spec = PacketSpec::tcp(1, 2, 443, 50000, vec![0xab; 100]);
        spec.tcp_flags = 0x18; // PSH|ACK
        let frame = build_packet(&spec);
        let p = parse_packet(&frame).unwrap();
        assert_eq!(p.tcp_flags, 0x18);
        assert_eq!(p.payload.len(), 100);
        assert_eq!(p.wire_len, 14 + 20 + 20 + 100);
    }

    #[test]
    fn checksum_detects_corruption() {
        let spec = PacketSpec::udp(1, 2, 3, 4, vec![]);
        let frame = build_packet(&spec);
        let mut bad = frame.to_vec();
        bad[14 + 8] ^= 0xff; // flip TTL
        assert_eq!(parse_packet(&bad), Err(ParseError::BadChecksum));
    }

    #[test]
    fn truncated_frames_rejected() {
        let spec = PacketSpec::udp(1, 2, 3, 4, vec![]);
        let frame = build_packet(&spec);
        for cut in [3usize, 20, 30] {
            let err = parse_packet(&frame[..cut]).unwrap_err();
            assert!(matches!(err, ParseError::Truncated { .. }), "cut={cut}: {err:?}");
        }
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut frame = build_packet(&PacketSpec::udp(1, 2, 3, 4, vec![])).to_vec();
        frame[12] = 0x86; // 0x86dd = IPv6
        frame[13] = 0xdd;
        assert_eq!(parse_packet(&frame), Err(ParseError::UnsupportedEtherType(0x86dd)));
    }

    #[test]
    fn checksum_rfc1071_example() {
        // Classic example: checksum of its own complement region is 0.
        let data = [0x45u8, 0x00, 0x00, 0x34];
        let c = internet_checksum(&data);
        let mut with = data.to_vec();
        with.extend_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn odd_length_checksum() {
        let c1 = internet_checksum(&[0xff, 0x00, 0xab]);
        let c2 = internet_checksum(&[0xff, 0x00, 0xab, 0x00]);
        assert_eq!(c1, c2);
    }
}

//! Zero-copy wire-format frontend: bytes in, flow identity + payload out.
//!
//! The rest of the stack historically ingested hand-built
//! [`TracePacket`]s; this module is the missing first hop of the paper's
//! pipeline — the P4 parser that turns the bytes actually on the wire into
//! the five-tuple and header fields inference consumes. [`parse_frame`] is
//! the hot-path entry point:
//!
//! * **Zero-copy**: the returned [`ParsedFrame`] borrows the input buffer —
//!   the L4 payload is a sub-slice, never a copy. One pass, no allocation.
//! * **Panic-free by construction**: every access is bounds-checked and
//!   every malformed input maps to a typed [`ParseError`]
//!   (`tests/wire_parse.rs` hammers this with a seeded mutation corpus).
//! * **The paper's parse graph**: Ethernet II with at most one 802.1Q tag
//!   (a second tag is [`ParseError::NestedVlan`] — PISA parsers pop a fixed
//!   number of tags), IPv4 (options allowed, header checksum verified) and
//!   IPv6 (hop-by-hop / routing / destination-options chains walked),
//!   TCP and UDP. Anything else is a typed `Unsupported*` error the
//!   engine's ingress counters bucket, not a panic.
//!
//! Frames are lenient about *payload* truncation (a pcap snaplen cut or
//! Ethernet trailer padding changes what was captured, not whether the
//! headers parse) but strict about *header* truncation: a snaplen that cuts
//! into the TCP options is `Truncated { layer: "tcp options" }`.
//!
//! The inverse direction lives here too: [`build_frame`] emits conforming
//! frames from a [`FrameSpec`] (VLAN/IPv4/IPv6/TCP/UDP, correct checksums)
//! for tests and fuzz corpora, and [`encode_trace_packet`] renders a
//! [`TracePacket`] as the frame a capture point would have seen — the
//! bridge the synthetic pcap workloads are built on.

use crate::features::RAW_BYTES_PER_PACKET;
use crate::flow::FiveTuple;
use crate::packet::{internet_checksum, ParseError, ETHERTYPE_IPV4, PROTO_TCP, PROTO_UDP};
use crate::replay::{RawFrame, TracePacket};

/// EtherType for IPv6.
pub const ETHERTYPE_IPV6: u16 = 0x86dd;
/// EtherType of an 802.1Q customer VLAN tag.
pub const ETHERTYPE_VLAN: u16 = 0x8100;
/// EtherType of an 802.1ad provider (service) VLAN tag — always rejected
/// as [`ParseError::NestedVlan`]: QinQ means more tags than the parse
/// graph pops.
pub const ETHERTYPE_QINQ: u16 = 0x88a8;

/// Ethernet II header length.
const ETH_LEN: usize = 14;
/// One 802.1Q tag (TPID + TCI).
const VLAN_LEN: usize = 4;
/// IPv6 fixed header length.
const IPV6_LEN: usize = 40;
/// Longest IPv6 extension-header chain the parser walks before declaring
/// the frame malformed (real stacks enforce similar caps).
const MAX_V6_EXTENSIONS: usize = 8;

/// Network-layer addresses of a parsed frame, preserved at full width
/// (the [`FiveTuple`] flow key folds IPv6 addresses to 32 bits — see
/// [`fold_ipv6`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpAddrs {
    /// An IPv4 source/destination pair.
    V4 {
        /// Source address.
        src: u32,
        /// Destination address.
        dst: u32,
    },
    /// An IPv6 source/destination pair.
    V6 {
        /// Source address.
        src: [u8; 16],
        /// Destination address.
        dst: [u8; 16],
    },
}

/// Folds an IPv6 address to the 32-bit key width the dataplane's register
/// hash fields carry (FNV-1a over the 16 bytes).
///
/// The switch keys flow state by a fixed-width hash, not the full
/// address; folding on the host keeps the [`FiveTuple`] flow identity the
/// same width for both IP versions, at the cost of theoretical collisions
/// — exactly the trade the hardware makes.
pub fn fold_ipv6(addr: &[u8; 16]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in addr {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// One parsed frame, borrowing the input buffer (zero-copy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParsedFrame<'a> {
    /// The flow identity inference is keyed by (IPv6 addresses folded to
    /// the 32-bit register key width).
    pub flow: FiveTuple,
    /// Full-width network-layer addresses.
    pub ip: IpAddrs,
    /// The 802.1Q VLAN id, when the frame carried one tag.
    pub vlan: Option<u16>,
    /// IPv4 TTL / IPv6 hop limit.
    pub ttl: u8,
    /// TCP flags (0 for UDP).
    pub tcp_flags: u8,
    /// The L4 payload as captured — a borrowed sub-slice of the input.
    /// May be shorter than the on-wire payload under snaplen truncation;
    /// Ethernet trailer padding is already stripped via the IP length
    /// fields.
    pub payload: &'a [u8],
    /// Bytes of the input buffer (the *captured* length; the original
    /// on-wire length of a snapped pcap record is only known to the
    /// capture file).
    pub caplen: usize,
}

impl ParsedFrame<'_> {
    /// Materializes the owned [`TracePacket`] the structured engine path
    /// consumes. `wire_len` is the original on-wire length (pass
    /// [`caplen`](ParsedFrame::caplen) when no better figure is known;
    /// pcap records carry the true one). The payload head copies at most
    /// [`RAW_BYTES_PER_PACKET`] bytes — everything raw-byte features can
    /// consume.
    pub fn to_trace_packet(&self, ts_micros: u64, wire_len: u16) -> TracePacket {
        TracePacket {
            ts_micros,
            flow: self.flow,
            wire_len,
            payload_head: self.payload[..self.payload.len().min(RAW_BYTES_PER_PACKET)].to_vec(),
            tcp_flags: self.tcp_flags,
            ttl: self.ttl,
        }
    }

    /// The payload length feature the engine extracts, identical on the
    /// raw and structured paths: captured payload bytes, saturated at the
    /// raw-byte window width.
    pub fn payload_head_len(&self) -> u16 {
        self.payload.len().min(RAW_BYTES_PER_PACKET) as u16
    }
}

fn need<'a>(data: &'a [u8], needed: usize, layer: &'static str) -> Result<&'a [u8], ParseError> {
    if data.len() < needed {
        Err(ParseError::Truncated { layer, needed, got: data.len() })
    } else {
        Ok(data)
    }
}

fn be16(data: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([data[at], data[at + 1]])
}

/// Parses one Ethernet II frame into a [`ParsedFrame`].
///
/// Zero-copy and panic-free: the result borrows `data`, and every
/// malformed or truncated input returns a typed [`ParseError`]. See the
/// [module docs](self) for the exact parse graph.
pub fn parse_frame(data: &[u8]) -> Result<ParsedFrame<'_>, ParseError> {
    need(data, ETH_LEN, "ethernet")?;
    let mut ethertype = be16(data, 12);
    let mut l3_off = ETH_LEN;
    let mut vlan = None;
    if ethertype == ETHERTYPE_QINQ {
        return Err(ParseError::NestedVlan);
    }
    if ethertype == ETHERTYPE_VLAN {
        need(data, ETH_LEN + VLAN_LEN, "vlan")?;
        vlan = Some(be16(data, 14) & 0x0fff);
        ethertype = be16(data, 16);
        l3_off = ETH_LEN + VLAN_LEN;
        if ethertype == ETHERTYPE_VLAN || ethertype == ETHERTYPE_QINQ {
            return Err(ParseError::NestedVlan);
        }
    }
    let l3 = &data[l3_off..];
    let (ip, ttl, protocol, l4) = match ethertype {
        ETHERTYPE_IPV4 => parse_ipv4(l3)?,
        ETHERTYPE_IPV6 => parse_ipv6(l3)?,
        other => return Err(ParseError::UnsupportedEtherType(other)),
    };
    let (src_port, dst_port, tcp_flags, payload) = parse_l4(protocol, l4)?;
    let (src_ip, dst_ip) = match &ip {
        IpAddrs::V4 { src, dst } => (*src, *dst),
        IpAddrs::V6 { src, dst } => (fold_ipv6(src), fold_ipv6(dst)),
    };
    Ok(ParsedFrame {
        flow: FiveTuple::new(src_ip, dst_ip, src_port, dst_port, protocol),
        ip,
        vlan,
        ttl,
        tcp_flags,
        payload,
        caplen: data.len(),
    })
}

/// IPv4: version/IHL/options/length validation plus header checksum.
fn parse_ipv4(l3: &[u8]) -> Result<(IpAddrs, u8, u8, &[u8]), ParseError> {
    need(l3, 20, "ipv4")?;
    if l3[0] >> 4 != 4 {
        return Err(ParseError::Malformed("ip version"));
    }
    let ihl = (l3[0] & 0x0f) as usize * 4;
    if ihl < 20 {
        return Err(ParseError::Malformed("ihl"));
    }
    need(l3, ihl, "ipv4 options")?;
    if internet_checksum(&l3[..ihl]) != 0 {
        return Err(ParseError::BadChecksum);
    }
    let total = be16(l3, 2) as usize;
    if total < ihl {
        return Err(ParseError::Malformed("ip total length"));
    }
    // Lenient on payload truncation (snaplen), strict on trailer padding:
    // the L4 view ends at the IP total length or the capture, whichever
    // comes first.
    let l4_end = total.min(l3.len());
    let ip = IpAddrs::V4 {
        src: u32::from_be_bytes([l3[12], l3[13], l3[14], l3[15]]),
        dst: u32::from_be_bytes([l3[16], l3[17], l3[18], l3[19]]),
    };
    Ok((ip, l3[8], l3[9], &l3[ihl..l4_end]))
}

/// IPv6: fixed header plus a bounded walk of the skippable extension
/// headers (hop-by-hop, routing, destination options). Fragments and
/// anything else surface as [`ParseError::UnsupportedProtocol`].
fn parse_ipv6(l3: &[u8]) -> Result<(IpAddrs, u8, u8, &[u8]), ParseError> {
    need(l3, IPV6_LEN, "ipv6")?;
    if l3[0] >> 4 != 6 {
        return Err(ParseError::Malformed("ip version"));
    }
    let payload_len = be16(l3, 4) as usize;
    let mut next = l3[6];
    let hop_limit = l3[7];
    let mut src = [0u8; 16];
    let mut dst = [0u8; 16];
    src.copy_from_slice(&l3[8..24]);
    dst.copy_from_slice(&l3[24..40]);
    let end = (IPV6_LEN + payload_len).min(l3.len());
    let mut rest = &l3[IPV6_LEN..end];
    for _ in 0..MAX_V6_EXTENSIONS {
        // 0 = hop-by-hop, 43 = routing, 60 = destination options: all share
        // the (next header, length-in-8-octets-minus-1) layout.
        if !matches!(next, 0 | 43 | 60) {
            break;
        }
        need(rest, 8, "ipv6 extension")?;
        let ext_len = (rest[1] as usize + 1) * 8;
        need(rest, ext_len, "ipv6 extension")?;
        next = rest[0];
        rest = &rest[ext_len..];
    }
    if matches!(next, 0 | 43 | 60) {
        return Err(ParseError::Malformed("ipv6 extension chain"));
    }
    Ok((IpAddrs::V6 { src, dst }, hop_limit, next, rest))
}

/// TCP/UDP: ports, flags and the payload slice.
fn parse_l4(protocol: u8, l4: &[u8]) -> Result<(u16, u16, u8, &[u8]), ParseError> {
    match protocol {
        PROTO_TCP => {
            need(l4, 20, "tcp")?;
            let off = ((l4[12] >> 4) as usize) * 4;
            if off < 20 {
                return Err(ParseError::Malformed("tcp data offset"));
            }
            need(l4, off, "tcp options")?;
            Ok((be16(l4, 0), be16(l4, 2), l4[13], &l4[off..]))
        }
        PROTO_UDP => {
            need(l4, 8, "udp")?;
            let udp_len = be16(l4, 4) as usize;
            if udp_len < 8 {
                return Err(ParseError::Malformed("udp length"));
            }
            Ok((be16(l4, 0), be16(l4, 2), 0, &l4[8..udp_len.min(l4.len())]))
        }
        other => Err(ParseError::UnsupportedProtocol(other)),
    }
}

// ---------------------------------------------------------------------------
// Batched parsing (structure-of-arrays).
// ---------------------------------------------------------------------------

/// A fixed-capacity batch of parsed frames laid out as structure-of-arrays
/// columns — the batch-friendly dual of [`parse_frame`].
///
/// The engine's fused bytes-to-verdict loop (`RawIngress` in the core
/// crate) processes frames in fixed-size batches: each incoming frame is
/// parsed immediately
/// (so the zero-copy borrow never outlives the source's buffer) and its
/// header fields land in parallel POD columns. Downstream stages — flow-slot
/// resolution, feature extraction, flattened-LUT inference — then sweep the
/// columns with straight-line loops instead of chasing one packet at a time.
///
/// Only the bounded payload *head* is copied (at most
/// [`RAW_BYTES_PER_PACKET`] bytes per frame, at a fixed stride), which is
/// exactly the slice both engine paths consume; everything else the parser
/// borrowed is reduced to fixed-width fields. Columns are preallocated at
/// construction and reused across [`clear`](FrameBatch::clear)s — pushing
/// into a non-full batch never allocates.
#[derive(Clone, Debug)]
pub struct FrameBatch {
    cap: usize,
    flows: Vec<FiveTuple>,
    ts_micros: Vec<u64>,
    wire_lens: Vec<u16>,
    tcp_flags: Vec<u8>,
    ttls: Vec<u8>,
    payload_lens: Vec<u16>,
    /// Payload heads at a fixed [`RAW_BYTES_PER_PACKET`] stride,
    /// zero-padded past each frame's captured length.
    payload_heads: Vec<u8>,
}

impl FrameBatch {
    /// An empty batch holding at most `cap` frames (columns preallocated).
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1, "a frame batch needs at least one slot");
        FrameBatch {
            cap,
            flows: Vec::with_capacity(cap),
            ts_micros: Vec::with_capacity(cap),
            wire_lens: Vec::with_capacity(cap),
            tcp_flags: Vec::with_capacity(cap),
            ttls: Vec::with_capacity(cap),
            payload_lens: Vec::with_capacity(cap),
            payload_heads: Vec::with_capacity(cap * RAW_BYTES_PER_PACKET),
        }
    }

    /// Parses `frame` and appends its columns. A rejected frame consumes no
    /// slot and leaves the batch unchanged — the typed [`ParseError`] is
    /// returned for the caller's counters. Panics if the batch is already
    /// [full](FrameBatch::is_full) (drain it first).
    pub fn push(&mut self, frame: &RawFrame<'_>) -> Result<(), ParseError> {
        assert!(!self.is_full(), "frame batch is full (capacity {})", self.cap);
        let parsed = parse_frame(frame.bytes)?;
        self.flows.push(parsed.flow);
        self.ts_micros.push(frame.ts_micros);
        self.wire_lens.push(frame.wire_len_u16());
        self.tcp_flags.push(parsed.tcp_flags);
        self.ttls.push(parsed.ttl);
        let head = &parsed.payload[..parsed.payload.len().min(RAW_BYTES_PER_PACKET)];
        self.payload_lens.push(head.len() as u16);
        self.payload_heads.extend_from_slice(head);
        self.payload_heads.resize(self.flows.len() * RAW_BYTES_PER_PACKET, 0);
        Ok(())
    }

    /// Frames currently in the batch.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no frame has been pushed since the last clear.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// True when the batch holds `capacity` frames.
    pub fn is_full(&self) -> bool {
        self.flows.len() == self.cap
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Empties the batch, retaining the column allocations.
    pub fn clear(&mut self) {
        self.flows.clear();
        self.ts_micros.clear();
        self.wire_lens.clear();
        self.tcp_flags.clear();
        self.ttls.clear();
        self.payload_lens.clear();
        self.payload_heads.clear();
    }

    /// Flow-identity column.
    pub fn flows(&self) -> &[FiveTuple] {
        &self.flows
    }

    /// Capture-timestamp column (microseconds).
    pub fn ts_micros(&self) -> &[u64] {
        &self.ts_micros
    }

    /// On-wire length column.
    pub fn wire_lens(&self) -> &[u16] {
        &self.wire_lens
    }

    /// TCP-flags column (0 for UDP).
    pub fn tcp_flags(&self) -> &[u8] {
        &self.tcp_flags
    }

    /// TTL / hop-limit column.
    pub fn ttls(&self) -> &[u8] {
        &self.ttls
    }

    /// Captured-payload-head length column (saturated at
    /// [`RAW_BYTES_PER_PACKET`] — the same feature
    /// [`ParsedFrame::payload_head_len`] reports).
    pub fn payload_lens(&self) -> &[u16] {
        &self.payload_lens
    }

    /// Frame `i`'s captured payload head — the identical slice the
    /// per-frame path hands the engine.
    pub fn payload_head(&self, i: usize) -> &[u8] {
        let start = i * RAW_BYTES_PER_PACKET;
        &self.payload_heads[start..start + usize::from(self.payload_lens[i])]
    }
}

// ---------------------------------------------------------------------------
// Frame construction.
// ---------------------------------------------------------------------------

/// Specification of a frame to build — the test/fuzz-corpus dual of
/// [`parse_frame`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameSpec {
    /// Optional 802.1Q VLAN id (one tag).
    pub vlan: Option<u16>,
    /// Network-layer addresses (selects IPv4 vs IPv6 encoding).
    pub ip: IpAddrs,
    /// Source L4 port.
    pub src_port: u16,
    /// Destination L4 port.
    pub dst_port: u16,
    /// IP protocol. TCP gets a 20-byte TCP header, anything else a UDP
    /// header shape — a non-TCP/UDP number round-trips to
    /// [`ParseError::UnsupportedProtocol`], which the error tests use.
    pub protocol: u8,
    /// TCP flags (ignored for UDP).
    pub tcp_flags: u8,
    /// IPv4 TTL / IPv6 hop limit.
    pub ttl: u8,
    /// L4 payload bytes.
    pub payload: Vec<u8>,
}

impl FrameSpec {
    /// A plain IPv4 UDP frame spec.
    pub fn v4_udp(src: u32, dst: u32, sp: u16, dp: u16, payload: Vec<u8>) -> Self {
        FrameSpec {
            vlan: None,
            ip: IpAddrs::V4 { src, dst },
            src_port: sp,
            dst_port: dp,
            protocol: PROTO_UDP,
            tcp_flags: 0,
            ttl: 64,
            payload,
        }
    }

    /// A plain IPv4 TCP frame spec (flags default to ACK).
    pub fn v4_tcp(src: u32, dst: u32, sp: u16, dp: u16, payload: Vec<u8>) -> Self {
        FrameSpec {
            protocol: PROTO_TCP,
            tcp_flags: 0x10,
            ..FrameSpec::v4_udp(src, dst, sp, dp, payload)
        }
    }

    /// A plain IPv6 TCP frame spec (flags default to ACK).
    pub fn v6_tcp(src: [u8; 16], dst: [u8; 16], sp: u16, dp: u16, payload: Vec<u8>) -> Self {
        FrameSpec {
            vlan: None,
            ip: IpAddrs::V6 { src, dst },
            src_port: sp,
            dst_port: dp,
            protocol: PROTO_TCP,
            tcp_flags: 0x10,
            ttl: 64,
            payload,
        }
    }

    /// A plain IPv6 UDP frame spec.
    pub fn v6_udp(src: [u8; 16], dst: [u8; 16], sp: u16, dp: u16, payload: Vec<u8>) -> Self {
        FrameSpec {
            protocol: PROTO_UDP,
            tcp_flags: 0,
            ..FrameSpec::v6_tcp(src, dst, sp, dp, payload)
        }
    }

    /// Tags the frame with one 802.1Q VLAN id.
    pub fn with_vlan(mut self, vlan: u16) -> Self {
        self.vlan = Some(vlan);
        self
    }
}

/// The L4 header length a spec encodes with.
fn l4_header_len(protocol: u8) -> usize {
    if protocol == PROTO_TCP {
        20
    } else {
        8
    }
}

/// Encodes `spec` into `buf` (cleared first) and returns the frame length.
/// Checksums are correct; the buffer is reusable across calls so a hot
/// synthesis loop allocates nothing after warm-up.
pub fn encode_frame(spec: &FrameSpec, buf: &mut Vec<u8>) -> usize {
    buf.clear();
    // Ethernet.
    buf.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x01]);
    buf.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x02]);
    if let Some(vlan) = spec.vlan {
        buf.extend_from_slice(&ETHERTYPE_VLAN.to_be_bytes());
        buf.extend_from_slice(&(vlan & 0x0fff).to_be_bytes());
    }
    let ethertype = match spec.ip {
        IpAddrs::V4 { .. } => ETHERTYPE_IPV4,
        IpAddrs::V6 { .. } => ETHERTYPE_IPV6,
    };
    buf.extend_from_slice(&ethertype.to_be_bytes());

    let l4_len = l4_header_len(spec.protocol) + spec.payload.len();
    match spec.ip {
        IpAddrs::V4 { src, dst } => {
            let ip_start = buf.len();
            let total = 20 + l4_len;
            buf.push(0x45);
            buf.push(0);
            buf.extend_from_slice(&(total.min(u16::MAX as usize) as u16).to_be_bytes());
            buf.extend_from_slice(&0x1234u16.to_be_bytes()); // identification
            buf.extend_from_slice(&0x4000u16.to_be_bytes()); // don't fragment
            buf.push(spec.ttl);
            buf.push(spec.protocol);
            buf.extend_from_slice(&[0, 0]); // checksum placeholder
            buf.extend_from_slice(&src.to_be_bytes());
            buf.extend_from_slice(&dst.to_be_bytes());
            let csum = internet_checksum(&buf[ip_start..ip_start + 20]);
            buf[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());
        }
        IpAddrs::V6 { src, dst } => {
            buf.push(0x60);
            buf.extend_from_slice(&[0, 0, 0]); // traffic class + flow label
            buf.extend_from_slice(&(l4_len.min(u16::MAX as usize) as u16).to_be_bytes());
            buf.push(spec.protocol); // next header
            buf.push(spec.ttl); // hop limit
            buf.extend_from_slice(&src);
            buf.extend_from_slice(&dst);
        }
    }

    if spec.protocol == PROTO_TCP {
        buf.extend_from_slice(&spec.src_port.to_be_bytes());
        buf.extend_from_slice(&spec.dst_port.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes()); // seq
        buf.extend_from_slice(&1u32.to_be_bytes()); // ack
        buf.push(0x50); // data offset 5
        buf.push(spec.tcp_flags);
        buf.extend_from_slice(&0xffffu16.to_be_bytes()); // window
        buf.extend_from_slice(&[0, 0]); // checksum (not validated)
        buf.extend_from_slice(&[0, 0]); // urgent
    } else {
        buf.extend_from_slice(&spec.src_port.to_be_bytes());
        buf.extend_from_slice(&spec.dst_port.to_be_bytes());
        buf.extend_from_slice(
            &((8 + spec.payload.len()).min(u16::MAX as usize) as u16).to_be_bytes(),
        );
        buf.extend_from_slice(&[0, 0]); // checksum optional for IPv4 UDP
    }
    buf.extend_from_slice(&spec.payload);
    buf.len()
}

/// [`encode_frame`] into a fresh buffer.
pub fn build_frame(spec: &FrameSpec) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_frame(spec, &mut buf);
    buf
}

/// Renders a [`TracePacket`] as the IPv4 frame a capture point would have
/// seen, into a reusable buffer; returns the frame's on-wire length.
///
/// The frame length is `pkt.wire_len`, clamped up to the minimum that
/// fits the headers plus the recorded payload head; the payload is the
/// head followed by zero fill. Parsing the result back therefore
/// *canonicalizes* the packet — `wire_len` is clamped and the payload head
/// is zero-extended up to the raw-byte window — which is exactly how the
/// raw and structured engine paths are kept bit-identical: both consume
/// the parsed view.
pub fn encode_trace_packet(pkt: &TracePacket, buf: &mut Vec<u8>) -> u16 {
    let header = ETH_LEN + 20 + l4_header_len(pkt.flow.protocol);
    let payload_len = (pkt.wire_len as usize).saturating_sub(header).max(pkt.payload_head.len());
    buf.clear();
    buf.reserve(header + payload_len);
    let spec = FrameSpec {
        vlan: None,
        ip: IpAddrs::V4 { src: pkt.flow.src_ip, dst: pkt.flow.dst_ip },
        src_port: pkt.flow.src_port,
        dst_port: pkt.flow.dst_port,
        protocol: pkt.flow.protocol,
        tcp_flags: pkt.tcp_flags,
        ttl: pkt.ttl,
        payload: Vec::new(),
    };
    // Encode with an empty payload, then splice in head + zero fill —
    // avoids cloning the payload into the spec.
    let mut frame_len = encode_frame(&spec, buf);
    frame_len += payload_len;
    // Fix up the length fields the payload participates in.
    let total = (20 + l4_header_len(pkt.flow.protocol) + payload_len).min(u16::MAX as usize) as u16;
    buf[ETH_LEN + 2..ETH_LEN + 4].copy_from_slice(&total.to_be_bytes());
    buf[ETH_LEN + 10..ETH_LEN + 12].copy_from_slice(&[0, 0]);
    let csum = internet_checksum(&buf[ETH_LEN..ETH_LEN + 20]);
    buf[ETH_LEN + 10..ETH_LEN + 12].copy_from_slice(&csum.to_be_bytes());
    if pkt.flow.protocol != PROTO_TCP {
        let udp_len = ((8 + payload_len).min(u16::MAX as usize) as u16).to_be_bytes();
        buf[ETH_LEN + 24..ETH_LEN + 26].copy_from_slice(&udp_len);
    }
    buf.extend_from_slice(&pkt.payload_head);
    buf.resize(frame_len, 0);
    frame_len.min(u16::MAX as usize) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PROTO_UDP;

    #[test]
    fn v4_tcp_round_trip() {
        let spec = FrameSpec::v4_tcp(0x0a000001, 0x0a000002, 443, 51000, vec![0xab; 30]);
        let frame = build_frame(&spec);
        let p = parse_frame(&frame).expect("parses");
        assert_eq!(p.flow, FiveTuple::new(0x0a000001, 0x0a000002, 443, 51000, PROTO_TCP));
        assert_eq!(p.tcp_flags, 0x10);
        assert_eq!(p.ttl, 64);
        assert_eq!(p.vlan, None);
        assert_eq!(p.payload, &[0xab; 30][..]);
        assert_eq!(p.caplen, frame.len());
    }

    #[test]
    fn vlan_tag_round_trip() {
        let spec = FrameSpec::v4_udp(1, 2, 53, 4000, vec![1, 2, 3]).with_vlan(42);
        let frame = build_frame(&spec);
        let p = parse_frame(&frame).expect("parses");
        assert_eq!(p.vlan, Some(42));
        assert_eq!(p.payload, &[1, 2, 3][..]);
    }

    #[test]
    fn v6_round_trip_folds_addresses() {
        let src = [0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let dst = [0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2];
        let spec = FrameSpec::v6_tcp(src, dst, 443, 50000, vec![9; 10]);
        let frame = build_frame(&spec);
        let p = parse_frame(&frame).expect("parses");
        assert_eq!(p.ip, IpAddrs::V6 { src, dst });
        assert_eq!(p.flow.src_ip, fold_ipv6(&src));
        assert_eq!(p.flow.dst_ip, fold_ipv6(&dst));
        assert_ne!(p.flow.src_ip, p.flow.dst_ip);
        assert_eq!(p.payload.len(), 10);
    }

    #[test]
    fn nested_vlan_rejected() {
        let inner = build_frame(&FrameSpec::v4_udp(1, 2, 3, 4, vec![]).with_vlan(7));
        // Wrap the tagged frame in a second tag by hand.
        let mut outer = inner[..12].to_vec();
        outer.extend_from_slice(&ETHERTYPE_VLAN.to_be_bytes());
        outer.extend_from_slice(&0x0001u16.to_be_bytes());
        outer.extend_from_slice(&inner[12..]);
        assert_eq!(parse_frame(&outer), Err(ParseError::NestedVlan));
        // And a provider (QinQ) outer tag is rejected immediately.
        let mut qinq = inner.clone();
        qinq[12..14].copy_from_slice(&ETHERTYPE_QINQ.to_be_bytes());
        assert_eq!(parse_frame(&qinq), Err(ParseError::NestedVlan));
    }

    #[test]
    fn trailer_padding_stripped_by_ip_length() {
        let spec = FrameSpec::v4_udp(1, 2, 3, 4, vec![0x55; 4]);
        let mut frame = build_frame(&spec);
        frame.resize(60, 0); // Ethernet minimum-frame padding
        let p = parse_frame(&frame).expect("parses");
        assert_eq!(p.payload, &[0x55; 4][..], "padding must not leak into the payload");
    }

    #[test]
    fn snaplen_cut_payload_is_lenient_headers_strict() {
        let spec = FrameSpec::v4_tcp(1, 2, 3, 4, vec![0x77; 100]);
        let frame = build_frame(&spec);
        // Cut inside the payload: parses, shorter payload.
        let p = parse_frame(&frame[..frame.len() - 60]).expect("parses");
        assert_eq!(p.payload.len(), 40);
        // Cut inside the TCP header: typed truncation.
        let err = parse_frame(&frame[..14 + 20 + 10]).unwrap_err();
        assert_eq!(err, ParseError::Truncated { layer: "tcp", needed: 20, got: 10 });
    }

    #[test]
    fn ipv6_extension_chain_is_walked() {
        let src = [1u8; 16];
        let dst = [2u8; 16];
        let spec = FrameSpec::v6_udp(src, dst, 1000, 2000, vec![0xee; 6]);
        let mut frame = build_frame(&spec);
        // Splice a hop-by-hop extension (8 bytes) between the v6 header and
        // the UDP header: next-header chain 0 -> 17.
        let l4_off = 14 + 40;
        frame[14 + 6] = 0; // v6 next header = hop-by-hop
        let mut ext = vec![PROTO_UDP, 0, 0, 0, 0, 0, 0, 0];
        ext.extend_from_slice(&frame[l4_off..]);
        frame.truncate(l4_off);
        frame.extend_from_slice(&ext);
        // payload_length grew by 8.
        let plen = be16(&frame, 14 + 4) + 8;
        frame[14 + 4..14 + 6].copy_from_slice(&plen.to_be_bytes());
        let p = parse_frame(&frame).expect("parses through the extension");
        assert_eq!(p.flow.protocol, PROTO_UDP);
        assert_eq!(p.payload, &[0xee; 6][..]);
    }

    #[test]
    fn encode_trace_packet_canonical_round_trip() {
        let pkt = TracePacket {
            ts_micros: 5,
            flow: FiveTuple::new(10, 20, 30, 40, PROTO_TCP),
            wire_len: 300,
            payload_head: vec![7; 16],
            tcp_flags: 0x18,
            ttl: 61,
        };
        let mut buf = Vec::new();
        let len = encode_trace_packet(&pkt, &mut buf);
        assert_eq!(len as usize, buf.len());
        assert_eq!(len, 300, "frame length equals the recorded wire length");
        let p = parse_frame(&buf).expect("parses");
        let back = p.to_trace_packet(pkt.ts_micros, len);
        assert_eq!(back.flow, pkt.flow);
        assert_eq!(back.wire_len, pkt.wire_len);
        assert_eq!(back.tcp_flags, pkt.tcp_flags);
        assert_eq!(back.ttl, pkt.ttl);
        // Canonicalized payload head: original bytes, zero-extended to the
        // raw-byte window.
        assert_eq!(back.payload_head.len(), RAW_BYTES_PER_PACKET);
        assert_eq!(&back.payload_head[..16], &pkt.payload_head[..]);
        assert!(back.payload_head[16..].iter().all(|&b| b == 0));
    }

    #[test]
    fn encode_trace_packet_clamps_tiny_wire_len() {
        let pkt = TracePacket {
            ts_micros: 0,
            flow: FiveTuple::new(1, 2, 3, 4, PROTO_UDP),
            wire_len: 10, // smaller than the headers
            payload_head: vec![1, 2],
            tcp_flags: 0,
            ttl: 64,
        };
        let mut buf = Vec::new();
        let len = encode_trace_packet(&pkt, &mut buf);
        assert_eq!(len as usize, 14 + 20 + 8 + 2);
        let p = parse_frame(&buf).expect("parses");
        assert_eq!(p.payload, &[1, 2][..]);
    }

    #[test]
    fn garbage_does_not_panic() {
        for len in 0..80 {
            let junk: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
            let _ = parse_frame(&junk);
        }
    }

    #[test]
    fn frame_batch_columns_match_per_frame_parses() {
        let specs = [
            FrameSpec::v4_tcp(10, 20, 1000, 2000, vec![0xaa; 90]).with_vlan(5),
            FrameSpec::v4_udp(30, 40, 53, 5353, vec![0xbb; 3]),
            FrameSpec::v6_tcp([1; 16], [2; 16], 443, 50000, vec![0xcc; 17]),
        ];
        let frames: Vec<Vec<u8>> = specs.iter().map(build_frame).collect();
        let mut batch = FrameBatch::with_capacity(4);
        assert!(batch.is_empty());
        for (i, bytes) in frames.iter().enumerate() {
            batch.push(&RawFrame { ts_micros: i as u64 * 10, wire_len: 2000, bytes }).unwrap();
        }
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_full());
        for (i, bytes) in frames.iter().enumerate() {
            let p = parse_frame(bytes).unwrap();
            assert_eq!(batch.flows()[i], p.flow);
            assert_eq!(batch.ts_micros()[i], i as u64 * 10);
            assert_eq!(batch.wire_lens()[i], 2000);
            assert_eq!(batch.tcp_flags()[i], p.tcp_flags);
            assert_eq!(batch.ttls()[i], p.ttl);
            assert_eq!(batch.payload_lens()[i], p.payload_head_len());
            assert_eq!(
                batch.payload_head(i),
                &p.payload[..p.payload.len().min(RAW_BYTES_PER_PACKET)],
                "payload head {i} must be the slice the per-frame path consumes"
            );
        }
        // The 90-byte payload is saturated at the raw-byte window width.
        assert_eq!(batch.payload_lens()[0], RAW_BYTES_PER_PACKET as u16);
    }

    #[test]
    fn frame_batch_rejects_without_consuming_a_slot() {
        let good = build_frame(&FrameSpec::v4_udp(1, 2, 3, 4, vec![7; 5]));
        let mut bad = good.clone();
        bad[14 + 8] ^= 0xff; // corrupt the IPv4 checksum
        let mut batch = FrameBatch::with_capacity(2);
        assert_eq!(
            batch.push(&RawFrame::new(0, &bad)).unwrap_err(),
            ParseError::BadChecksum,
            "typed rejection surfaces to the caller's counters"
        );
        assert!(batch.is_empty(), "a rejected frame must not occupy a slot");
        batch.push(&RawFrame::new(1, &good)).unwrap();
        batch.push(&RawFrame::new(2, &good)).unwrap();
        assert!(batch.is_full());
        batch.clear();
        assert!(batch.is_empty());
        batch.push(&RawFrame::new(3, &good)).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.payload_head(0), &[7u8; 5][..]);
    }
}

//! Five-tuple match predicates for control-plane packet routing.
//!
//! A multi-tenant serving engine steers each packet to one of several
//! deployed models the way FENIX-style dataplanes select a model behind one
//! switch pipeline: by matching header fields. [`RoutePredicate`] is the
//! match language — destination-port sets and ranges, source/destination
//! subnets, protocol, and boolean combinators — evaluated against a
//! [`FiveTuple`] on the hot ingress path (no allocation, short-circuiting).

use crate::flow::FiveTuple;

/// A boolean predicate over a flow's five-tuple.
///
/// Built once at tenant-attach time, evaluated per packet. The variants
/// mirror what a switch's model-selection table can key on: L4 ports
/// (exact or range), IPv4 prefixes, and the protocol byte.
///
/// ```
/// use pegasus_net::{FiveTuple, RoutePredicate};
///
/// // "TCP traffic to 10.0.0.0/8, port 443"
/// let p = RoutePredicate::all_of(vec![
///     RoutePredicate::Protocol(6),
///     RoutePredicate::DstSubnet { addr: 0x0a00_0000, prefix: 8 },
///     RoutePredicate::DstPort(443),
/// ]);
/// assert!(p.matches(&FiveTuple::new(0x01020304, 0x0a141e28, 50000, 443, 6)));
/// assert!(!p.matches(&FiveTuple::new(0x01020304, 0x0b141e28, 50000, 443, 6)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoutePredicate {
    /// Matches every packet (catch-all tenants).
    Any,
    /// Exact destination port.
    DstPort(u16),
    /// Inclusive destination-port range.
    DstPortRange {
        /// Lowest matching port.
        lo: u16,
        /// Highest matching port (inclusive).
        hi: u16,
    },
    /// Exact source port.
    SrcPort(u16),
    /// Destination IPv4 subnet in CIDR terms.
    DstSubnet {
        /// Network address (host byte order).
        addr: u32,
        /// Prefix length, `0..=32`; 0 matches everything.
        prefix: u8,
    },
    /// Source IPv4 subnet in CIDR terms.
    SrcSubnet {
        /// Network address (host byte order).
        addr: u32,
        /// Prefix length, `0..=32`; 0 matches everything.
        prefix: u8,
    },
    /// IP protocol number (6 = TCP, 17 = UDP).
    Protocol(u8),
    /// True when every child matches (empty = true).
    AllOf(Vec<RoutePredicate>),
    /// True when at least one child matches (empty = false).
    AnyOf(Vec<RoutePredicate>),
    /// Negation.
    Not(Box<RoutePredicate>),
}

/// `addr` masked to `prefix` leading bits.
fn subnet_matches(addr: u32, net: u32, prefix: u8) -> bool {
    if prefix == 0 {
        return true;
    }
    let mask = u32::MAX << (32 - prefix.min(32) as u32);
    addr & mask == net & mask
}

impl RoutePredicate {
    /// Conjunction helper (reads better than the enum literal).
    pub fn all_of(children: Vec<RoutePredicate>) -> Self {
        RoutePredicate::AllOf(children)
    }

    /// Disjunction helper.
    pub fn any_of(children: Vec<RoutePredicate>) -> Self {
        RoutePredicate::AnyOf(children)
    }

    /// Evaluates the predicate against one flow identity.
    pub fn matches(&self, ft: &FiveTuple) -> bool {
        match self {
            RoutePredicate::Any => true,
            RoutePredicate::DstPort(p) => ft.dst_port == *p,
            RoutePredicate::DstPortRange { lo, hi } => (*lo..=*hi).contains(&ft.dst_port),
            RoutePredicate::SrcPort(p) => ft.src_port == *p,
            RoutePredicate::DstSubnet { addr, prefix } => subnet_matches(ft.dst_ip, *addr, *prefix),
            RoutePredicate::SrcSubnet { addr, prefix } => subnet_matches(ft.src_ip, *addr, *prefix),
            RoutePredicate::Protocol(p) => ft.protocol == *p,
            RoutePredicate::AllOf(cs) => cs.iter().all(|c| c.matches(ft)),
            RoutePredicate::AnyOf(cs) => cs.iter().any(|c| c.matches(ft)),
            RoutePredicate::Not(c) => !c.matches(ft),
        }
    }
}

// --- serde (control-daemon wire format) --------------------------------
//
// Recursive enum: one tag byte per node, children as length-prefixed
// vectors. Depth is naturally bounded by the frame-size cap the daemon
// enforces before decoding.

impl serde::Serialize for RoutePredicate {
    fn serialize(&self, w: &mut serde::Writer) {
        match self {
            RoutePredicate::Any => w.write_u8(0),
            RoutePredicate::DstPort(p) => {
                w.write_u8(1);
                p.serialize(w);
            }
            RoutePredicate::DstPortRange { lo, hi } => {
                w.write_u8(2);
                lo.serialize(w);
                hi.serialize(w);
            }
            RoutePredicate::SrcPort(p) => {
                w.write_u8(3);
                p.serialize(w);
            }
            RoutePredicate::DstSubnet { addr, prefix } => {
                w.write_u8(4);
                addr.serialize(w);
                prefix.serialize(w);
            }
            RoutePredicate::SrcSubnet { addr, prefix } => {
                w.write_u8(5);
                addr.serialize(w);
                prefix.serialize(w);
            }
            RoutePredicate::Protocol(p) => {
                w.write_u8(6);
                p.serialize(w);
            }
            RoutePredicate::AllOf(children) => {
                w.write_u8(7);
                children.serialize(w);
            }
            RoutePredicate::AnyOf(children) => {
                w.write_u8(8);
                children.serialize(w);
            }
            RoutePredicate::Not(inner) => {
                w.write_u8(9);
                inner.serialize(w);
            }
        }
    }
}

impl<'de> serde::Deserialize<'de> for RoutePredicate {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        use serde::Deserialize as D;
        Ok(match r.read_u8("RoutePredicate")? {
            0 => RoutePredicate::Any,
            1 => RoutePredicate::DstPort(D::deserialize(r)?),
            2 => RoutePredicate::DstPortRange { lo: D::deserialize(r)?, hi: D::deserialize(r)? },
            3 => RoutePredicate::SrcPort(D::deserialize(r)?),
            4 => RoutePredicate::DstSubnet { addr: D::deserialize(r)?, prefix: D::deserialize(r)? },
            5 => RoutePredicate::SrcSubnet { addr: D::deserialize(r)?, prefix: D::deserialize(r)? },
            6 => RoutePredicate::Protocol(D::deserialize(r)?),
            7 => RoutePredicate::AllOf(D::deserialize(r)?),
            8 => RoutePredicate::AnyOf(D::deserialize(r)?),
            9 => RoutePredicate::Not(D::deserialize(r)?),
            tag => return Err(serde::DecodeError::BadTag { what: "RoutePredicate", tag }),
        })
    }
}

// --- compiled routing plane ---------------------------------------------
//
// A linear first-match scan over predicate trees is O(tenants) per packet —
// fine for two tenants, hopeless for ten thousand. `CompiledRouter` compiles
// a rule list once (at attach/swap/detach time) into constant-time lookup
// structures, preserving the scan's first-match semantics exactly: every
// structure stores the *minimum rule index* that could match, the lookup
// takes the minimum across structures, and only residual predicates with a
// smaller index than the current best are ever evaluated.

/// Sentinel rule index meaning "no rule".
const NO_RULE: u32 = u32::MAX;

/// Sentinel trie-node index meaning "no child".
const NO_NODE: u32 = u32::MAX;

/// Sentinel packed entry meaning "no match" — compares greater than every
/// real [`pack`]ed entry because `build` rejects rule index `u32::MAX`.
const NO_MATCH: u64 = u64::MAX;

/// Packs a rule index (priority, high bits) with its payload (low bits)
/// into one word. The structures store packed entries so the per-packet
/// min-chain resolves priority *and* payload in a single load — a separate
/// `payloads[idx]` lookup would put a second data-dependent (and, at fleet
/// scale, cache-missing) load on the hot path.
#[inline]
const fn pack(idx: u32, payload: u32) -> u64 {
    ((idx as u64) << 32) | payload as u64
}

/// Rule index of a packed entry (`NO_RULE` for [`NO_MATCH`]).
#[inline]
const fn packed_idx(entry: u64) -> u32 {
    (entry >> 32) as u32
}

/// Which compiled structure resolved a packet. Feeds the engine's routing
/// counters so operators can see whether their predicates actually compile
/// into the fast structures or fall back to the residual scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteHit {
    /// Dense destination-port lookup table.
    Lut,
    /// Source/destination LPM trie.
    Trie,
    /// Protocol filter array.
    Proto,
    /// A catch-all ([`RoutePredicate::Any`] or empty `AllOf`) rule.
    CatchAll,
    /// The residual first-match predicate scan.
    Residual,
}

/// Outcome of one [`CompiledRouter::route`] lookup.
#[derive(Clone, Copy, Debug)]
pub struct RouteDecision {
    /// Payload of the winning rule, or `None` when nothing matched.
    pub payload: Option<u32>,
    /// Structure that produced the winner (only meaningful on a match).
    pub hit: RouteHit,
    /// Residual predicates evaluated during this lookup.
    pub residual_scanned: u32,
}

/// Fixed-depth binary trie over IPv4 prefixes storing, per node, the
/// smallest rule index whose subnet terminates there. Lookup walks the
/// address's bit path and takes the minimum rule index along it — not the
/// longest prefix, because rule priority here is attach order, exactly as
/// the naive scan resolves overlapping subnets.
#[derive(Clone, Debug, Default)]
struct PrefixTrie {
    nodes: Vec<TrieNode>,
}

#[derive(Clone, Copy, Debug)]
struct TrieNode {
    child: [u32; 2],
    best: u64,
}

impl PrefixTrie {
    fn insert(&mut self, addr: u32, prefix: u8, rule: u64) {
        if self.nodes.is_empty() {
            self.nodes.push(TrieNode { child: [NO_NODE; 2], best: NO_MATCH });
        }
        let mut node = 0usize;
        for depth in 0..u32::from(prefix.min(32)) {
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            let next = match self.nodes[node].child[bit] {
                NO_NODE => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(TrieNode { child: [NO_NODE; 2], best: NO_MATCH });
                    self.nodes[node].child[bit] = idx;
                    idx
                }
                idx => idx,
            };
            node = next as usize;
        }
        let best = &mut self.nodes[node].best;
        *best = (*best).min(rule);
    }

    #[inline]
    fn lookup(&self, addr: u32) -> u64 {
        let Some(root) = self.nodes.first() else { return NO_MATCH };
        let mut best = root.best;
        let mut node = root;
        for depth in 0..32 {
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            match node.child[bit] {
                NO_NODE => break,
                next => {
                    node = &self.nodes[next as usize];
                    best = best.min(node.best);
                }
            }
        }
        best
    }

    fn heap_bytes(&self) -> u64 {
        (self.nodes.len() * std::mem::size_of::<TrieNode>()) as u64
    }
}

/// How one predicate compiles: which structure absorbs it, or residual.
enum RuleShape {
    /// Pure destination-port rule: the union of these inclusive ranges.
    Ports(Vec<(u16, u16)>),
    SrcNet {
        addr: u32,
        prefix: u8,
    },
    DstNet {
        addr: u32,
        prefix: u8,
    },
    Proto(u8),
    CatchAll,
    Residual,
}

/// True when `p` is expressible as a union of destination-port ranges
/// (exact ports, ranges, and `AnyOf` nests thereof), pushing the ranges
/// into `out`. An empty `AnyOf` qualifies vacuously — zero ranges, which
/// matches nothing, exactly like the scan's empty-disjunction semantics.
fn collect_port_ranges(p: &RoutePredicate, out: &mut Vec<(u16, u16)>) -> bool {
    match p {
        RoutePredicate::DstPort(port) => {
            out.push((*port, *port));
            true
        }
        RoutePredicate::DstPortRange { lo, hi } => {
            out.push((*lo, *hi));
            true
        }
        RoutePredicate::AnyOf(cs) => cs.iter().all(|c| collect_port_ranges(c, out)),
        _ => false,
    }
}

fn shape_of(p: &RoutePredicate) -> RuleShape {
    match p {
        RoutePredicate::Any => RuleShape::CatchAll,
        RoutePredicate::DstPort(port) => RuleShape::Ports(vec![(*port, *port)]),
        RoutePredicate::DstPortRange { lo, hi } => RuleShape::Ports(vec![(*lo, *hi)]),
        RoutePredicate::SrcSubnet { addr, prefix } => {
            RuleShape::SrcNet { addr: *addr, prefix: *prefix }
        }
        RoutePredicate::DstSubnet { addr, prefix } => {
            RuleShape::DstNet { addr: *addr, prefix: *prefix }
        }
        RoutePredicate::Protocol(proto) => RuleShape::Proto(*proto),
        RoutePredicate::AllOf(cs) => match cs.len() {
            0 => RuleShape::CatchAll, // empty conjunction is true
            1 => shape_of(&cs[0]),
            _ => RuleShape::Residual,
        },
        RoutePredicate::AnyOf(cs) => {
            let mut ranges = Vec::new();
            if collect_port_ranges(p, &mut ranges) {
                RuleShape::Ports(ranges)
            } else if cs.len() == 1 {
                shape_of(&cs[0])
            } else {
                RuleShape::Residual
            }
        }
        RoutePredicate::SrcPort(_) | RoutePredicate::Not(_) => RuleShape::Residual,
    }
}

/// An immutable compiled routing table over a prioritized rule list.
///
/// Built once from `(payload, predicate)` pairs whose position is their
/// priority (first match wins, like the attach-order scan it replaces).
/// Destination-port rules land in a dense 65536-entry LUT, subnet rules in
/// two prefix tries, protocol rules in a 256-entry array, catch-alls in
/// a single register; everything else goes to a residual scan list that is
/// only consulted up to the best structural match's priority. Per-packet
/// cost is therefore independent of the rule count for compiled shapes and
/// bounded by the residual count otherwise.
///
/// ```
/// use pegasus_net::{CompiledRouter, FiveTuple, RoutePredicate};
///
/// let router = CompiledRouter::build(&[
///     (7, RoutePredicate::DstPort(443)),
///     (9, RoutePredicate::Any),
/// ]);
/// let https = router.route(&FiveTuple::new(1, 2, 4000, 443, 6));
/// assert_eq!(https.payload, Some(7));
/// let rest = router.route(&FiveTuple::new(1, 2, 4000, 80, 6));
/// assert_eq!(rest.payload, Some(9));
/// ```
#[derive(Clone, Debug)]
pub struct CompiledRouter {
    lut: Box<[u64]>,
    src_trie: PrefixTrie,
    dst_trie: PrefixTrie,
    proto: Box<[u64]>,
    catch_all: u64,
    residual: Vec<(u32, RoutePredicate)>,
    payloads: Vec<u32>,
}

impl Default for CompiledRouter {
    fn default() -> Self {
        CompiledRouter::build(&[])
    }
}

impl CompiledRouter {
    /// Compiles a prioritized rule list. Position in the slice is the
    /// priority: the compiled router resolves overlaps to the lowest
    /// index, matching a first-match scan over the same list.
    pub fn build(rules: &[(u32, RoutePredicate)]) -> Self {
        assert!(rules.len() < NO_RULE as usize, "rule list too large");
        let mut lut = vec![NO_MATCH; 1 << 16].into_boxed_slice();
        let mut src_trie = PrefixTrie::default();
        let mut dst_trie = PrefixTrie::default();
        let mut proto = vec![NO_MATCH; 1 << 8].into_boxed_slice();
        let mut catch_all = NO_MATCH;
        let mut residual = Vec::new();
        let mut payloads = Vec::with_capacity(rules.len());
        for (idx, (payload, pred)) in rules.iter().enumerate() {
            let entry = pack(idx as u32, *payload);
            payloads.push(*payload);
            match shape_of(pred) {
                RuleShape::Ports(ranges) => {
                    for (lo, hi) in ranges {
                        for port in lo..=hi {
                            let slot = &mut lut[port as usize];
                            *slot = (*slot).min(entry);
                        }
                    }
                }
                RuleShape::SrcNet { addr, prefix } => src_trie.insert(addr, prefix, entry),
                RuleShape::DstNet { addr, prefix } => dst_trie.insert(addr, prefix, entry),
                RuleShape::Proto(p) => {
                    let slot = &mut proto[p as usize];
                    *slot = (*slot).min(entry);
                }
                RuleShape::CatchAll => catch_all = catch_all.min(entry),
                RuleShape::Residual => residual.push((idx as u32, pred.clone())),
            }
        }
        CompiledRouter { lut, src_trie, dst_trie, proto, catch_all, residual, payloads }
    }

    /// Routes one five-tuple: the payload of the lowest-index matching
    /// rule, which structure produced it, and how many residual predicates
    /// had to be evaluated.
    #[inline]
    pub fn route(&self, ft: &FiveTuple) -> RouteDecision {
        // Branchless min over the structural lattice (`u64::min` lowers to
        // cmov): which structure matched is data-dependent per packet, so
        // picking the winner with compare-and-branch would eat a
        // misprediction on every mixed-hit workload. Every entry packs
        // (rule index, payload), so the min resolves priority and payload
        // in one go. Ties resolve exactly as the old strict-`<` chain did:
        // equal packed entries are the same rule, and the hit label below
        // tests the structures in the same order.
        let lut = self.lut[ft.dst_port as usize];
        let dst = self.dst_trie.lookup(ft.dst_ip);
        let src = self.src_trie.lookup(ft.src_ip);
        let proto = self.proto[ft.protocol as usize];
        let mut best = lut.min(dst).min(src).min(proto).min(self.catch_all);

        // Only residual rules that would *outrank* the structural winner
        // can change the outcome; the list is index-sorted, so stop at the
        // first entry at or past `best`'s rule index.
        let mut scanned = 0u32;
        let mut residual_hit = false;
        for (idx, pred) in &self.residual {
            if *idx >= packed_idx(best) {
                break;
            }
            scanned += 1;
            if pred.matches(ft) {
                best = pack(*idx, self.payloads[*idx as usize]);
                residual_hit = true;
                break;
            }
        }
        let hit = if residual_hit {
            RouteHit::Residual
        } else if best == lut {
            RouteHit::Lut
        } else if best == dst || best == src {
            RouteHit::Trie
        } else if best == proto {
            RouteHit::Proto
        } else {
            RouteHit::CatchAll
        };
        let payload = if best == NO_MATCH { None } else { Some(best as u32) };
        RouteDecision { payload, hit, residual_scanned: scanned }
    }

    /// Rules compiled into this router.
    pub fn rules(&self) -> usize {
        self.payloads.len()
    }

    /// Rules that fell back to the residual scan list.
    pub fn residual_rules(&self) -> usize {
        self.residual.len()
    }

    /// Approximate heap footprint of the compiled structures in bytes
    /// (LUT + tries + protocol array + payload/residual lists). The LUT
    /// dominates at 512 KiB and is independent of the rule count.
    pub fn heap_bytes(&self) -> u64 {
        let fixed = (self.lut.len() + self.proto.len()) * std::mem::size_of::<u64>()
            + self.payloads.len() * std::mem::size_of::<u32>();
        let residual = self.residual.len() * std::mem::size_of::<(u32, RoutePredicate)>();
        fixed as u64 + residual as u64 + self.src_trie.heap_bytes() + self.dst_trie.heap_bytes()
    }
}

/// How one tenant's predicate compiles, for operator-facing summaries
/// (`pegasusctl list`): which structures absorb it and how much falls to
/// the residual scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteSummary {
    /// Destination ports covered by the dense LUT (union of ranges).
    pub lut_ports: u32,
    /// IPv4 prefixes inserted into the src/dst tries.
    pub subnets: u32,
    /// Protocol-filter entries.
    pub protocols: u32,
    /// Whether the predicate compiles to a catch-all.
    pub catch_all: bool,
    /// Predicates left to the residual first-match scan.
    pub residual: u32,
}

impl RouteSummary {
    /// Classifies one tenant predicate the way [`CompiledRouter::build`]
    /// would compile it.
    pub fn of(pred: &RoutePredicate) -> Self {
        let mut s = RouteSummary::default();
        match shape_of(pred) {
            RuleShape::Ports(mut ranges) => {
                // Count distinct covered ports via interval merge — no
                // 65536-slot scratch needed for a summary line.
                ranges.retain(|(lo, hi)| lo <= hi);
                ranges.sort_unstable();
                let mut covered = 0u32;
                let mut end: Option<u32> = None;
                for (lo, hi) in ranges {
                    let (lo, hi) = (u32::from(lo), u32::from(hi));
                    match end {
                        Some(e) if lo <= e => {
                            if hi > e {
                                covered += hi - e;
                                end = Some(hi);
                            }
                        }
                        _ => {
                            covered += hi - lo + 1;
                            end = Some(hi);
                        }
                    }
                }
                s.lut_ports = covered;
            }
            RuleShape::SrcNet { .. } | RuleShape::DstNet { .. } => s.subnets = 1,
            RuleShape::Proto(_) => s.protocols = 1,
            RuleShape::CatchAll => s.catch_all = true,
            RuleShape::Residual => s.residual = 1,
        }
        s
    }
}

serde::impl_serde_struct!(RouteSummary { lut_ports, subnets, protocols, catch_all, residual });

#[cfg(test)]
mod tests {
    use super::*;

    fn ft(dst_ip: u32, dst_port: u16) -> FiveTuple {
        FiveTuple::new(0x0a000001, dst_ip, 40000, dst_port, 6)
    }

    #[test]
    fn any_matches_everything() {
        assert!(RoutePredicate::Any.matches(&ft(1, 1)));
    }

    #[test]
    fn port_exact_and_range() {
        assert!(RoutePredicate::DstPort(443).matches(&ft(9, 443)));
        assert!(!RoutePredicate::DstPort(443).matches(&ft(9, 80)));
        let r = RoutePredicate::DstPortRange { lo: 8000, hi: 8999 };
        assert!(r.matches(&ft(9, 8500)));
        assert!(r.matches(&ft(9, 8000)) && r.matches(&ft(9, 8999)));
        assert!(!r.matches(&ft(9, 9000)));
    }

    #[test]
    fn subnets_mask_correctly() {
        let p = RoutePredicate::DstSubnet { addr: 0xc0a8_0100, prefix: 24 }; // 192.168.1.0/24
        assert!(p.matches(&ft(0xc0a8_0105, 1)));
        assert!(!p.matches(&ft(0xc0a8_0205, 1)));
        // /0 matches everything.
        assert!(RoutePredicate::DstSubnet { addr: 0, prefix: 0 }.matches(&ft(0xffff_ffff, 1)));
        // /32 is an exact host.
        let host = RoutePredicate::DstSubnet { addr: 7, prefix: 32 };
        assert!(host.matches(&ft(7, 1)) && !host.matches(&ft(8, 1)));
    }

    #[test]
    fn combinators_short_circuit_semantics() {
        let p = RoutePredicate::all_of(vec![
            RoutePredicate::Protocol(6),
            RoutePredicate::any_of(vec![RoutePredicate::DstPort(80), RoutePredicate::DstPort(443)]),
        ]);
        assert!(p.matches(&ft(1, 443)));
        assert!(!p.matches(&ft(1, 22)));
        assert!(RoutePredicate::AllOf(vec![]).matches(&ft(1, 1)));
        assert!(!RoutePredicate::AnyOf(vec![]).matches(&ft(1, 1)));
        assert!(!RoutePredicate::Not(Box::new(RoutePredicate::Any)).matches(&ft(1, 1)));
    }

    /// The oracle the compiled router must reproduce: first match wins.
    fn scan(rules: &[(u32, RoutePredicate)], ft: &FiveTuple) -> Option<u32> {
        rules.iter().find(|(_, p)| p.matches(ft)).map(|(t, _)| *t)
    }

    #[test]
    fn compiled_first_match_beats_later_rules() {
        let rules = vec![
            (10, RoutePredicate::DstPort(443)),
            (20, RoutePredicate::Any),
            (30, RoutePredicate::DstPort(443)), // shadowed by both earlier rules
        ];
        let r = CompiledRouter::build(&rules);
        let https = ft(1, 443);
        assert_eq!(r.route(&https).payload, Some(10));
        assert_eq!(r.route(&https).payload, scan(&rules, &https));
        let other = ft(1, 80);
        assert_eq!(r.route(&other).payload, Some(20));
        assert_eq!(r.route(&other).hit, RouteHit::CatchAll);
    }

    #[test]
    fn compiled_residual_only_wins_when_it_outranks_structures() {
        let rules = vec![
            (1, RoutePredicate::SrcPort(40000)), // residual, highest priority
            (2, RoutePredicate::DstPort(443)),
        ];
        let r = CompiledRouter::build(&rules);
        assert_eq!(r.residual_rules(), 1);
        let d = r.route(&ft(1, 443));
        assert_eq!(d.payload, Some(1));
        assert_eq!(d.hit, RouteHit::Residual);
        // When the structural winner outranks every residual, none are
        // evaluated at all.
        let swapped = vec![(2, RoutePredicate::DstPort(443)), (1, RoutePredicate::SrcPort(40000))];
        let r = CompiledRouter::build(&swapped);
        let d = r.route(&ft(1, 443));
        assert_eq!(d.payload, Some(2));
        assert_eq!(d.residual_scanned, 0);
    }

    #[test]
    fn compiled_subnets_resolve_overlap_by_priority_not_length() {
        // Naive scan gives the /8 (listed first) priority over the more
        // specific /24; the trie must agree even though LPM would not.
        let rules = vec![
            (1, RoutePredicate::DstSubnet { addr: 0x0a00_0000, prefix: 8 }),
            (2, RoutePredicate::DstSubnet { addr: 0x0a0a_0a00, prefix: 24 }),
        ];
        let r = CompiledRouter::build(&rules);
        let inner = ft(0x0a0a_0a05, 1);
        assert_eq!(r.route(&inner).payload, Some(1));
        assert_eq!(r.route(&inner).payload, scan(&rules, &inner));
        assert_eq!(r.route(&ft(0x0b00_0001, 1)).payload, None);
    }

    #[test]
    fn compiled_handles_empty_and_degenerate_combinators() {
        let rules = vec![
            (1, RoutePredicate::AnyOf(vec![])), // never matches
            (2, RoutePredicate::AllOf(vec![])), // catch-all
            (3, RoutePredicate::DstPortRange { lo: 100, hi: 50 }), // empty range
        ];
        let r = CompiledRouter::build(&rules);
        for probe in [ft(1, 1), ft(9, 75), ft(0xffff_ffff, 50)] {
            assert_eq!(r.route(&probe).payload, scan(&rules, &probe));
            assert_eq!(r.route(&probe).payload, Some(2));
        }
    }

    #[test]
    fn compiled_flattens_anyof_port_unions_into_lut() {
        let rules = vec![(
            5,
            RoutePredicate::any_of(vec![
                RoutePredicate::DstPort(80),
                RoutePredicate::DstPortRange { lo: 8000, hi: 8010 },
            ]),
        )];
        let r = CompiledRouter::build(&rules);
        assert_eq!(r.residual_rules(), 0);
        assert_eq!(r.route(&ft(1, 80)).hit, RouteHit::Lut);
        assert_eq!(r.route(&ft(1, 8005)).payload, Some(5));
        assert_eq!(r.route(&ft(1, 79)).payload, None);
    }

    #[test]
    fn empty_router_routes_nothing() {
        let r = CompiledRouter::default();
        let d = r.route(&ft(1, 1));
        assert_eq!(d.payload, None);
        assert_eq!(d.residual_scanned, 0);
        assert_eq!(r.rules(), 0);
        assert!(r.heap_bytes() >= (1 << 16) * 4);
    }

    #[test]
    fn route_summary_classifies_and_merges_port_intervals() {
        let ports = RoutePredicate::any_of(vec![
            RoutePredicate::DstPortRange { lo: 10, hi: 20 },
            RoutePredicate::DstPortRange { lo: 15, hi: 25 }, // overlaps
            RoutePredicate::DstPort(25),                     // contained
            RoutePredicate::DstPort(40),
        ]);
        let s = RouteSummary::of(&ports);
        assert_eq!(s.lut_ports, 17); // 10..=25 plus 40
        assert_eq!(s.residual, 0);
        assert!(RouteSummary::of(&RoutePredicate::Any).catch_all);
        assert_eq!(RouteSummary::of(&RoutePredicate::SrcSubnet { addr: 0, prefix: 8 }).subnets, 1);
        assert_eq!(RouteSummary::of(&RoutePredicate::Protocol(6)).protocols, 1);
        let residual =
            RoutePredicate::all_of(vec![RoutePredicate::Protocol(6), RoutePredicate::DstPort(443)]);
        assert_eq!(RouteSummary::of(&residual).residual, 1);
        // Summary round-trips through the daemon wire format.
        let bytes = serde::to_bytes(&s);
        assert_eq!(serde::from_bytes::<RouteSummary>(&bytes).unwrap(), s);
    }
}

//! Five-tuple match predicates for control-plane packet routing.
//!
//! A multi-tenant serving engine steers each packet to one of several
//! deployed models the way FENIX-style dataplanes select a model behind one
//! switch pipeline: by matching header fields. [`RoutePredicate`] is the
//! match language — destination-port sets and ranges, source/destination
//! subnets, protocol, and boolean combinators — evaluated against a
//! [`FiveTuple`] on the hot ingress path (no allocation, short-circuiting).

use crate::flow::FiveTuple;

/// A boolean predicate over a flow's five-tuple.
///
/// Built once at tenant-attach time, evaluated per packet. The variants
/// mirror what a switch's model-selection table can key on: L4 ports
/// (exact or range), IPv4 prefixes, and the protocol byte.
///
/// ```
/// use pegasus_net::{FiveTuple, RoutePredicate};
///
/// // "TCP traffic to 10.0.0.0/8, port 443"
/// let p = RoutePredicate::all_of(vec![
///     RoutePredicate::Protocol(6),
///     RoutePredicate::DstSubnet { addr: 0x0a00_0000, prefix: 8 },
///     RoutePredicate::DstPort(443),
/// ]);
/// assert!(p.matches(&FiveTuple::new(0x01020304, 0x0a141e28, 50000, 443, 6)));
/// assert!(!p.matches(&FiveTuple::new(0x01020304, 0x0b141e28, 50000, 443, 6)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoutePredicate {
    /// Matches every packet (catch-all tenants).
    Any,
    /// Exact destination port.
    DstPort(u16),
    /// Inclusive destination-port range.
    DstPortRange {
        /// Lowest matching port.
        lo: u16,
        /// Highest matching port (inclusive).
        hi: u16,
    },
    /// Exact source port.
    SrcPort(u16),
    /// Destination IPv4 subnet in CIDR terms.
    DstSubnet {
        /// Network address (host byte order).
        addr: u32,
        /// Prefix length, `0..=32`; 0 matches everything.
        prefix: u8,
    },
    /// Source IPv4 subnet in CIDR terms.
    SrcSubnet {
        /// Network address (host byte order).
        addr: u32,
        /// Prefix length, `0..=32`; 0 matches everything.
        prefix: u8,
    },
    /// IP protocol number (6 = TCP, 17 = UDP).
    Protocol(u8),
    /// True when every child matches (empty = true).
    AllOf(Vec<RoutePredicate>),
    /// True when at least one child matches (empty = false).
    AnyOf(Vec<RoutePredicate>),
    /// Negation.
    Not(Box<RoutePredicate>),
}

/// `addr` masked to `prefix` leading bits.
fn subnet_matches(addr: u32, net: u32, prefix: u8) -> bool {
    if prefix == 0 {
        return true;
    }
    let mask = u32::MAX << (32 - prefix.min(32) as u32);
    addr & mask == net & mask
}

impl RoutePredicate {
    /// Conjunction helper (reads better than the enum literal).
    pub fn all_of(children: Vec<RoutePredicate>) -> Self {
        RoutePredicate::AllOf(children)
    }

    /// Disjunction helper.
    pub fn any_of(children: Vec<RoutePredicate>) -> Self {
        RoutePredicate::AnyOf(children)
    }

    /// Evaluates the predicate against one flow identity.
    pub fn matches(&self, ft: &FiveTuple) -> bool {
        match self {
            RoutePredicate::Any => true,
            RoutePredicate::DstPort(p) => ft.dst_port == *p,
            RoutePredicate::DstPortRange { lo, hi } => (*lo..=*hi).contains(&ft.dst_port),
            RoutePredicate::SrcPort(p) => ft.src_port == *p,
            RoutePredicate::DstSubnet { addr, prefix } => subnet_matches(ft.dst_ip, *addr, *prefix),
            RoutePredicate::SrcSubnet { addr, prefix } => subnet_matches(ft.src_ip, *addr, *prefix),
            RoutePredicate::Protocol(p) => ft.protocol == *p,
            RoutePredicate::AllOf(cs) => cs.iter().all(|c| c.matches(ft)),
            RoutePredicate::AnyOf(cs) => cs.iter().any(|c| c.matches(ft)),
            RoutePredicate::Not(c) => !c.matches(ft),
        }
    }
}

// --- serde (control-daemon wire format) --------------------------------
//
// Recursive enum: one tag byte per node, children as length-prefixed
// vectors. Depth is naturally bounded by the frame-size cap the daemon
// enforces before decoding.

impl serde::Serialize for RoutePredicate {
    fn serialize(&self, w: &mut serde::Writer) {
        match self {
            RoutePredicate::Any => w.write_u8(0),
            RoutePredicate::DstPort(p) => {
                w.write_u8(1);
                p.serialize(w);
            }
            RoutePredicate::DstPortRange { lo, hi } => {
                w.write_u8(2);
                lo.serialize(w);
                hi.serialize(w);
            }
            RoutePredicate::SrcPort(p) => {
                w.write_u8(3);
                p.serialize(w);
            }
            RoutePredicate::DstSubnet { addr, prefix } => {
                w.write_u8(4);
                addr.serialize(w);
                prefix.serialize(w);
            }
            RoutePredicate::SrcSubnet { addr, prefix } => {
                w.write_u8(5);
                addr.serialize(w);
                prefix.serialize(w);
            }
            RoutePredicate::Protocol(p) => {
                w.write_u8(6);
                p.serialize(w);
            }
            RoutePredicate::AllOf(children) => {
                w.write_u8(7);
                children.serialize(w);
            }
            RoutePredicate::AnyOf(children) => {
                w.write_u8(8);
                children.serialize(w);
            }
            RoutePredicate::Not(inner) => {
                w.write_u8(9);
                inner.serialize(w);
            }
        }
    }
}

impl<'de> serde::Deserialize<'de> for RoutePredicate {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        use serde::Deserialize as D;
        Ok(match r.read_u8("RoutePredicate")? {
            0 => RoutePredicate::Any,
            1 => RoutePredicate::DstPort(D::deserialize(r)?),
            2 => RoutePredicate::DstPortRange { lo: D::deserialize(r)?, hi: D::deserialize(r)? },
            3 => RoutePredicate::SrcPort(D::deserialize(r)?),
            4 => RoutePredicate::DstSubnet { addr: D::deserialize(r)?, prefix: D::deserialize(r)? },
            5 => RoutePredicate::SrcSubnet { addr: D::deserialize(r)?, prefix: D::deserialize(r)? },
            6 => RoutePredicate::Protocol(D::deserialize(r)?),
            7 => RoutePredicate::AllOf(D::deserialize(r)?),
            8 => RoutePredicate::AnyOf(D::deserialize(r)?),
            9 => RoutePredicate::Not(D::deserialize(r)?),
            tag => return Err(serde::DecodeError::BadTag { what: "RoutePredicate", tag }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft(dst_ip: u32, dst_port: u16) -> FiveTuple {
        FiveTuple::new(0x0a000001, dst_ip, 40000, dst_port, 6)
    }

    #[test]
    fn any_matches_everything() {
        assert!(RoutePredicate::Any.matches(&ft(1, 1)));
    }

    #[test]
    fn port_exact_and_range() {
        assert!(RoutePredicate::DstPort(443).matches(&ft(9, 443)));
        assert!(!RoutePredicate::DstPort(443).matches(&ft(9, 80)));
        let r = RoutePredicate::DstPortRange { lo: 8000, hi: 8999 };
        assert!(r.matches(&ft(9, 8500)));
        assert!(r.matches(&ft(9, 8000)) && r.matches(&ft(9, 8999)));
        assert!(!r.matches(&ft(9, 9000)));
    }

    #[test]
    fn subnets_mask_correctly() {
        let p = RoutePredicate::DstSubnet { addr: 0xc0a8_0100, prefix: 24 }; // 192.168.1.0/24
        assert!(p.matches(&ft(0xc0a8_0105, 1)));
        assert!(!p.matches(&ft(0xc0a8_0205, 1)));
        // /0 matches everything.
        assert!(RoutePredicate::DstSubnet { addr: 0, prefix: 0 }.matches(&ft(0xffff_ffff, 1)));
        // /32 is an exact host.
        let host = RoutePredicate::DstSubnet { addr: 7, prefix: 32 };
        assert!(host.matches(&ft(7, 1)) && !host.matches(&ft(8, 1)));
    }

    #[test]
    fn combinators_short_circuit_semantics() {
        let p = RoutePredicate::all_of(vec![
            RoutePredicate::Protocol(6),
            RoutePredicate::any_of(vec![RoutePredicate::DstPort(80), RoutePredicate::DstPort(443)]),
        ]);
        assert!(p.matches(&ft(1, 443)));
        assert!(!p.matches(&ft(1, 22)));
        assert!(RoutePredicate::AllOf(vec![]).matches(&ft(1, 1)));
        assert!(!RoutePredicate::AnyOf(vec![]).matches(&ft(1, 1)));
        assert!(!RoutePredicate::Not(Box::new(RoutePredicate::Any)).matches(&ft(1, 1)));
    }
}

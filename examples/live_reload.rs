//! Live serving with hot model reload — the paper's production story.
//!
//! One long-lived [`EngineServer`] serves two tenants at once, the way a
//! switch pipeline serves multiple models behind one program:
//!
//! * **vpn** — the CNN-L per-flow windowed pipeline (44 stateful bits per
//!   flow) classifying encrypted VPN traffic on dst port 443;
//! * **p2p** — the MLP-B statistical-feature pipeline classifying P2P
//!   traffic on everything else.
//!
//! Mid-run, the control plane hot-swaps the **vpn** tenant onto a
//! retrained CNN-L artifact — the paper's table-entry rewrite: no
//! recompile, no traffic drain. The apply is an epoch/RCU publication
//! each shard adopts at its next packet boundary, the other tenant's
//! packets keep flowing (none dropped), and the swapped tenant's
//! per-flow register files migrate into the new artifact on first touch,
//! so its established flows keep classifying without re-warming.
//!
//! Run: `cargo run --example live_reload --release`

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::cnn_l::{CnnL, CnnLVariant};
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::{ModelData, TrainSettings};
use pegasus::core::{EngineBuilder, EngineStats, Pegasus, PegasusError, TenantConfig};
use pegasus::datasets::{extract_views, generate_trace, iscxvpn, peerrush, GenConfig};
use pegasus::net::RoutePredicate;
use pegasus::switch::SwitchConfig;

fn print_stats(label: &str, stats: &EngineStats) {
    println!("[{label}] live stats:");
    for t in &stats.tenants {
        println!(
            "  tenant '{}' (epoch {}): {} pkts over {} flows at {:.0} pps, \
             {} classified / {} warm-up, p99 {} ns",
            t.name,
            t.epoch,
            t.report.packets,
            t.report.flows,
            t.report.pps(),
            t.report.classified,
            t.report.warmup,
            t.report.latency.quantile_nanos(0.99),
        );
        let table = &t.report.table;
        println!(
            "    flow table: occupancy {}/{} slots, evictions {} idle + {} capacity, \
             {} alias collisions, {} state bytes",
            table.occupancy,
            table.capacity,
            table.evictions_idle,
            table.evictions_capacity,
            table.alias_collisions,
            table.state_bytes,
        );
        // The per-tenant occupancy/eviction counters must be coherent —
        // CI runs this example as an assertion harness.
        assert!(table.capacity > 0, "tenant '{}' reports no flow-table capacity", t.name);
        assert!(table.occupancy <= table.capacity, "occupancy cannot exceed capacity");
        assert_eq!(table.occupancy, t.report.flows, "flows metric IS table occupancy");
    }
    println!("  unrouted: {}", stats.unrouted);
}

fn main() -> Result<(), PegasusError> {
    // --- Two workloads, one wire. -------------------------------------
    // ISCXVPN-like traffic lives on dst port 443; peerrush-like P2P on
    // high ports. Merged and re-sorted, they form one packet stream.
    let vpn_spec = iscxvpn();
    let p2p_spec = peerrush();
    let vpn_trace = generate_trace(&vpn_spec, &GenConfig { flows_per_class: 10, seed: 31 });
    let p2p_trace = generate_trace(&p2p_spec, &GenConfig { flows_per_class: 14, seed: 32 });
    let mut wire = vpn_trace.clone();
    wire.merge(p2p_trace.clone());
    println!(
        "wire: {} packets ({} vpn + {} p2p) over {} flows",
        wire.len(),
        vpn_trace.len(),
        p2p_trace.len(),
        wire.flow_count()
    );

    // --- Train + compile + deploy both tenants' models. ---------------
    let settings = TrainSettings::quick();
    let vpn_views = extract_views(&vpn_trace);
    let vpn_data = ModelData::new().with_raw(&vpn_views.raw).with_seq(&vpn_views.seq);
    let opts = CompileOptions { clustering_depth: 6, ..Default::default() };
    let vpn_v1 =
        Pegasus::new(CnnL::fit(&vpn_views.raw, &vpn_views.seq, CnnLVariant::v44(), &settings))
            .options(opts.clone())
            .compile(&vpn_data)?
            .deploy(&SwitchConfig::tofino2())?;

    let p2p_views = extract_views(&p2p_trace);
    let p2p_data = ModelData::new().with_stat(&p2p_views.stat);
    let p2p = Pegasus::<MlpB>::train(&p2p_data, &settings)?
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&p2p_data)?
        .deploy(&SwitchConfig::tofino2())?;

    // The artifact the control plane will swap in mid-run: a retrained
    // CNN-L of the same pipeline shape (fresh seed, same variant).
    let retrain_settings = TrainSettings { seed: 99, ..settings };
    let vpn_v2 = Pegasus::new(CnnL::fit(
        &vpn_views.raw,
        &vpn_views.seq,
        CnnLVariant::v44(),
        &retrain_settings,
    ))
    .options(opts)
    .compile(&vpn_data)?
    .deploy(&SwitchConfig::tofino2())?;

    // --- Build the long-lived engine and attach both tenants. ---------
    let server = EngineBuilder::new().shards(2).batch(128).stats_cadence(256).build()?;
    let control = server.control();
    let ingress = server.ingress();
    let vpn_tenant = control.attach(
        vpn_v1.engine_artifact()?,
        TenantConfig::new().name("vpn").route(RoutePredicate::DstPort(443)),
    )?;
    // The p2p tenant runs under an explicit per-tenant state budget: 512
    // host flow-table slots per shard, idle flows aged out after 100k
    // packets without traffic. attach() validates the budget against the
    // switch model's stateful SRAM before any shard allocates a slab.
    let p2p_tenant = control.attach(
        p2p.engine_artifact()?,
        TenantConfig::new()
            .name("p2p")
            .route(RoutePredicate::Any)
            .flow_capacity(512)
            .idle_timeout_packets(100_000),
    )?;
    println!(
        "attached tenants: vpn (#{}, CNN-L, dst-port 443) and p2p (#{}, MLP-B, catch-all, \
         512-slot budget)",
        vpn_tenant.id(),
        p2p_tenant.id()
    );

    // --- Serve: first half, swap, second half. -------------------------
    let split = wire.len() / 2;
    for pkt in &wire.packets[..split] {
        ingress.push(pkt.clone())?;
    }
    ingress.flush()?;
    // Stats are worker-published (every `stats_cadence` packets and on
    // idle), not polled from the workers — give the shards a beat to
    // drain the queue so the snapshot reflects the first half.
    let mut stats = control.stats()?;
    for _ in 0..100 {
        if stats.tenants.iter().all(|t| t.report.packets > 0) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        stats = control.stats()?;
    }
    print_stats("pre-swap", &stats);
    let flows_before = stats.tenant(vpn_tenant).map(|t| t.report.flows).unwrap_or(0);

    let swap = control.swap(vpn_tenant, vpn_v2.engine_artifact()?)?;
    println!(
        "hot-swapped 'vpn' to the retrained artifact: epoch {}, per-flow state retained: {}",
        swap.epoch, swap.state_retained
    );
    assert!(swap.state_retained, "same-shape CNN-L swap must keep register files");

    for pkt in &wire.packets[split..] {
        ingress.push(pkt.clone())?;
    }
    ingress.flush()?;
    print_stats("post-swap", &control.stats()?);

    // --- Drain and verify no one lost a packet or its flow state. -----
    let mut report = server.shutdown()?;
    let vpn_final = report.take_tenant(vpn_tenant).expect("vpn report");
    let p2p_final = report.take_tenant(p2p_tenant).expect("p2p report");
    let vpn_report = vpn_final.result?;
    let p2p_report = p2p_final.result?;
    assert_eq!(
        p2p_final.routed_packets, p2p_report.packets,
        "the untouched tenant must not drop packets across the neighbor's swap"
    );
    assert_eq!(vpn_final.routed_packets, vpn_report.packets);
    assert!(
        vpn_report.flows >= flows_before,
        "swap must not reset the vpn tenant's flow table ({} -> {})",
        flows_before,
        vpn_report.flows
    );
    // Per-tenant flow tables carry their configured bounds all the way to
    // the terminal report: p2p's 512-slot budget times 2 shards, and vpn's
    // capacity fixed by CNN-L's register file (2^flow_slots_log2 per
    // shard) — with its hash-collision count surfaced.
    assert_eq!(p2p_report.table.capacity, 512 * 2, "p2p capacity is the configured budget");
    let vpn_slots = vpn_v2.flow().expect("flow plane").flow_slots() as u64;
    assert_eq!(vpn_report.table.capacity, vpn_slots * 2, "vpn capacity is the register file");
    println!(
        "final: vpn {} pkts / {} flows (epoch {}, {} alias collisions), \
         p2p {} pkts / {} flows ({} evictions) — no drops, state kept",
        vpn_report.packets,
        vpn_report.flows,
        vpn_final.epoch,
        vpn_report.table.alias_collisions,
        p2p_report.packets,
        p2p_report.flows,
        p2p_report.table.evictions(),
    );
    Ok(())
}

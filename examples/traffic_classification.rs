//! VPN traffic classification with the per-flow windowed CNN-L pipeline —
//! the paper's headline experiment: 3840-bit raw-byte inputs classified
//! per packet with 44 stateful bits per flow.
//!
//! Packets stream through the sharded packet engine exactly as a testbed
//! server would feed a switch: flows are hashed RSS-style across worker
//! shards, each shard owns a fork of the per-flow register pipeline (no
//! per-packet lock), and every full window yields a classification.
//!
//! Run: `cargo run --example traffic_classification --release`

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::cnn_l::{CnnL, CnnLVariant};
use pegasus::core::models::{ModelData, TrainSettings};
use pegasus::core::{Pegasus, PegasusError, StreamConfig};
use pegasus::datasets::{extract_views, generate_trace, iscxvpn, split_by_flow, GenConfig};
use pegasus::switch::SwitchConfig;

fn main() -> Result<(), PegasusError> {
    // Seven service classes inside one encrypted VPN tunnel.
    let spec = iscxvpn();
    let trace = generate_trace(&spec, &GenConfig { flows_per_class: 40, seed: 7 });
    let (train, _val, test) = split_by_flow(&trace, 7);
    let train_views = extract_views(&train);
    println!(
        "ISCXVPN-like: {} classes, {} training windows, input scale {} bits",
        spec.num_classes(),
        train_views.raw.len(),
        CnnL::input_bits()
    );

    // Train the two-part model: per-packet byte encoder + window head.
    // `fit` picks the Figure 7 storage variant; the trait default is 44-bit.
    let settings = TrainSettings { epochs: 20, ..TrainSettings::default() };
    let model = CnnL::fit(&train_views.raw, &train_views.seq, CnnLVariant::v44(), &settings);

    // Compile + deploy the distributed per-flow pipeline through the
    // builder; it lowers to a `Flow` artifact with register state.
    let data = ModelData::new().with_raw(&train_views.raw).with_seq(&train_views.seq);
    let opts = CompileOptions { clustering_depth: 6, ..Default::default() };
    let deployment =
        Pegasus::new(model).options(opts).compile(&data)?.deploy(&SwitchConfig::tofino2())?;
    let report = deployment.resource_report();
    println!(
        "deployed: {} stages, {} stateful bits/flow, SRAM {:.2}%, TCAM {:.2}%",
        report.stages_used,
        report.stateful_bits_per_flow,
        report.sram_frac * 100.0,
        report.tcam_frac * 100.0
    );

    // Stream the test trace through the sharded engine: four workers, each
    // owning a fresh fork of the register pipeline for its share of flows.
    let cfg = StreamConfig { shards: 4, record_predictions: true, ..Default::default() };
    let stream = deployment.stream_with(&mut test.source(), &cfg)?;
    let mut correct = 0u64;
    let mut scored = 0u64;
    for (flow, preds) in stream.predictions.as_ref().expect("recording enabled") {
        if let Some(label) = test.label_of(flow) {
            scored += preds.len() as u64;
            correct += preds.iter().filter(|&&p| p == label).count() as u64;
        }
    }
    println!(
        "streamed {} packets over {} flows at {:.0} pps ({} shards, mean latency {:.1} µs); \
         classified {} full-window packets; accuracy {:.2}%",
        stream.packets,
        stream.flows,
        stream.pps(),
        stream.shards.len(),
        stream.latency.mean_nanos() / 1000.0,
        stream.classified,
        100.0 * correct as f64 / scored.max(1) as f64
    );
    Ok(())
}

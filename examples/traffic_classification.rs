//! VPN traffic classification with the per-flow windowed CNN-L pipeline —
//! the paper's headline experiment: 3840-bit raw-byte inputs classified
//! per packet with 44 stateful bits per flow.
//!
//! Packets stream through the replay engine exactly as tcpreplay would feed
//! a switch; the deployed pipeline extracts per-packet fuzzy indexes into
//! registers and classifies on every full window.
//!
//! Run: `cargo run --example traffic_classification --release`

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::cnn_l::{flow_hash, CnnL, CnnLVariant, BYTES};
use pegasus::core::models::{ModelData, TrainSettings};
use pegasus::core::{Pegasus, PegasusError};
use pegasus::datasets::{extract_views, generate_trace, iscxvpn, split_by_flow, GenConfig};
use pegasus::net::{Replayer, TracePacket};
use pegasus::switch::SwitchConfig;

fn main() -> Result<(), PegasusError> {
    // Seven service classes inside one encrypted VPN tunnel.
    let spec = iscxvpn();
    let trace = generate_trace(&spec, &GenConfig { flows_per_class: 40, seed: 7 });
    let (train, _val, test) = split_by_flow(&trace, 7);
    let train_views = extract_views(&train);
    println!(
        "ISCXVPN-like: {} classes, {} training windows, input scale {} bits",
        spec.num_classes(),
        train_views.raw.len(),
        CnnL::input_bits()
    );

    // Train the two-part model: per-packet byte encoder + window head.
    // `fit` picks the Figure 7 storage variant; the trait default is 44-bit.
    let settings = TrainSettings { epochs: 20, ..TrainSettings::default() };
    let model = CnnL::fit(&train_views.raw, &train_views.seq, CnnLVariant::v44(), &settings);

    // Compile + deploy the distributed per-flow pipeline through the
    // builder; it lowers to a `Flow` artifact with register state.
    let data = ModelData::new().with_raw(&train_views.raw).with_seq(&train_views.seq);
    let opts = CompileOptions { clustering_depth: 6, ..Default::default() };
    let mut deployment =
        Pegasus::new(model).options(opts).compile(&data)?.deploy(&SwitchConfig::tofino2())?;
    let report = deployment.resource_report();
    println!(
        "deployed: {} stages, {} stateful bits/flow, SRAM {:.2}%, TCAM {:.2}%",
        report.stages_used,
        report.stateful_bits_per_flow,
        report.sram_frac * 100.0,
        report.tcam_frac * 100.0
    );

    // Replay the test trace packet by packet through the per-flow runtime.
    let classifier = deployment.flow_mut()?;
    let mut correct = 0u64;
    let mut scored = 0u64;
    let mut sink = |pkt: &TracePacket| {
        let codes: Vec<f32> = pkt
            .payload_head
            .iter()
            .take(BYTES)
            .map(|&b| f32::from(b))
            .chain(std::iter::repeat(0.0))
            .take(BYTES)
            .collect();
        let verdict = classifier
            .on_packet(flow_hash(&pkt.flow), pkt.ts_micros, pkt.wire_len, &codes)
            .expect("extractor arity matches");
        if let (Some(pred), Some(label)) = (verdict.predicted, test.label_of(&pkt.flow)) {
            scored += 1;
            if pred == label {
                correct += 1;
            }
        }
    };
    let stats = Replayer::new().replay(&test, &mut sink);
    println!(
        "replayed {} packets; classified {} full-window packets; accuracy {:.2}%",
        stats.delivered,
        scored,
        100.0 * correct as f64 / scored.max(1) as f64
    );
    Ok(())
}

//! Unsupervised malicious-traffic detection (§7.4): train an AutoEncoder on
//! benign traffic only, deploy it with on-switch MAE scoring, and detect
//! attack families it has never seen — all through the `Pegasus` builder.
//!
//! Run: `cargo run --example anomaly_detection --release`

use pegasus::core::models::autoencoder::AutoEncoder;
use pegasus::core::models::{DataplaneNet, ModelData, TrainSettings};
use pegasus::core::{Pegasus, PegasusError};
use pegasus::datasets::{
    extract_views, generate_trace, inject_attack, peerrush, split_by_flow, AttackKind, GenConfig,
    ATTACK_LABEL,
};
use pegasus::nn::metrics::auc;
use pegasus::switch::SwitchConfig;

fn main() -> Result<(), PegasusError> {
    // Benign-only training (the zero-day setting: attacks are unknown).
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 50, seed: 99 });
    let (train, _val, test) = split_by_flow(&trace, 99);
    let benign = extract_views(&train).seq;
    println!("training on {} benign windows (no attack traffic seen)", benign.len());

    let settings = TrainSettings { epochs: 60, ..TrainSettings::default() };
    let data = ModelData::new().with_seq(&benign);
    let ae = AutoEncoder::train(&data, &settings)?;

    // Compile + deploy: reconstruction pipeline + on-switch |x - x̂| MAE
    // tables. The AutoEncoder's default target is `Scores`, so no argmax
    // head is emitted — the anomaly score is one fixed-point PHV field.
    let dp = Pegasus::new(ae).compile(&data)?.deploy(&SwitchConfig::tofino2())?;
    println!(
        "deployed: {} stages; anomaly score = one fixed-point PHV field",
        dp.resource_report().stages_used
    );

    // Inject each attack family at the paper's 1:4 ratio and measure AUC.
    println!("\n{:<8} {:>8} {:>14}", "Attack", "AUC", "(on-switch MAE)");
    for kind in AttackKind::all() {
        let mixed = inject_attack(&test, kind, 0xbad ^ kind.name().len() as u64);
        let views = extract_views(&mixed);
        let labels: Vec<bool> = views.seq.y.iter().map(|&l| l == ATTACK_LABEL).collect();
        let scores: Vec<f64> = (0..views.seq.len())
            .map(|r| Ok(f64::from(dp.scores(views.seq.x.row(r))?[0])))
            .collect::<Result<_, PegasusError>>()?;
        println!("{:<8} {:>8.4}", kind.name(), auc(&scores, &labels));
    }
    println!("\n(higher MAE = more anomalous; switches can rate-limit or mirror on threshold)");
    Ok(())
}

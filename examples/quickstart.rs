//! Quickstart: train a model, compile it onto the switch simulator, and
//! classify packets — the whole Pegasus pipeline through the staged
//! builder: train → `Pegasus::new` → `compile` → `deploy` → serve.
//!
//! Run: `cargo run --example quickstart --release`

use pegasus::core::compile::{CompileOptions, CompileTarget};
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::{DataplaneNet, ModelData, TrainSettings};
use pegasus::core::{Pegasus, PegasusError};
use pegasus::datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
use pegasus::switch::SwitchConfig;

fn main() -> Result<(), PegasusError> {
    // 1. A synthetic PeerRush-like workload: three P2P applications.
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 60, seed: 42 });
    let (train, val, test) = split_by_flow(&trace, 42);
    let (train, val, test) = (extract_views(&train), extract_views(&val), extract_views(&test));
    println!("dataset: {} train / {} test samples", train.stat.len(), test.stat.len());

    // 2. Train MLP-B on statistical features (full precision, offline).
    //    One ModelData bundle serves every model; MLP-B pulls the stat view.
    let data = ModelData::new().with_stat(&train.stat).with_validation(&val.stat, &val.seq);
    let mut model = MlpB::train(&data, &TrainSettings::default())?;
    let float_f1 = model.evaluate_float(&data)?.f1;
    println!("full-precision macro-F1 (train split): {float_f1:.4}");

    // 3+4. Compile (fuzzy matching + primitive fusion + fixed-point tables,
    //    with centroid fine-tuning) and deploy onto the Tofino-2 resource
    //    model — deployment validates every hardware limit (stages, SRAM,
    //    TCAM, PHV, action bus).
    let opts =
        CompileOptions { clustering_depth: 6, finetune_centroids: true, ..Default::default() };
    let compiled =
        Pegasus::new(model).options(opts).target(CompileTarget::Classify).compile(&data)?;
    println!(
        "compiled: {} tables, {} entries, {} lookups/packet",
        compiled.report().tables,
        compiled.report().entries,
        compiled.report().lookups_per_input
    );
    let dp = compiled.deploy(&SwitchConfig::tofino2())?;
    let report = dp.resource_report();
    println!(
        "deployed: {} stages, SRAM {:.2}%, TCAM {:.2}%, bus {:.2}%",
        report.stages_used,
        report.sram_frac * 100.0,
        report.tcam_frac * 100.0,
        report.bus_frac * 100.0
    );

    // 5. Classify at "line rate". The deployment is `&self`-shareable; the
    //    batched call fans out across cores.
    let rows: Vec<Vec<f32>> =
        (0..test.stat.len().min(8)).map(|r| test.stat.x.row(r).to_vec()).collect();
    let verdicts: Vec<usize> = dp.classify_batch(&rows).into_iter().collect::<Result<_, _>>()?;
    println!("first verdicts: {verdicts:?}");
    let dp_f1 = dp.evaluate(&test.stat)?.f1;

    // The trained float model stays available inside the deployment for
    // side-by-side comparison on the held-out split.
    let mut dp = dp;
    let float_test_f1 = dp.model_mut().evaluate_float(&ModelData::new().with_stat(&test.stat))?.f1;
    println!(
        "on-switch macro-F1: {dp_f1:.4} (Δ {:+.4} vs full precision {float_test_f1:.4})",
        dp_f1 - float_test_f1
    );
    Ok(())
}

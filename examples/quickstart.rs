//! Quickstart: train a model, compile it onto the switch simulator, and
//! classify packets — the whole Pegasus pipeline in ~40 lines of API.
//!
//! Run: `cargo run --example quickstart --release`

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::TrainSettings;
use pegasus::core::runtime::DataplaneModel;
use pegasus::datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
use pegasus::switch::SwitchConfig;

fn main() {
    // 1. A synthetic PeerRush-like workload: three P2P applications.
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 60, seed: 42 });
    let (train, val, test) = split_by_flow(&trace, 42);
    let (train, val, test) =
        (extract_views(&train), extract_views(&val), extract_views(&test));
    println!("dataset: {} train / {} test samples", train.stat.len(), test.stat.len());

    // 2. Train MLP-B on statistical features (full precision, offline).
    let mut model = MlpB::train(&train.stat, Some(&val.stat), &TrainSettings::default());
    let float_f1 = model.evaluate_float(&test.stat).f1;
    println!("full-precision macro-F1: {float_f1:.4}");

    // 3. Compile: fuzzy matching + primitive fusion + fixed-point tables.
    let opts = CompileOptions { clustering_depth: 6, ..Default::default() };
    let pipeline = model.compile(&train.stat, &opts, true);
    println!(
        "compiled: {} tables, {} entries, {} lookups/packet",
        pipeline.report.tables, pipeline.report.entries, pipeline.report.lookups_per_input
    );

    // 4. Deploy onto the Tofino-2 resource model — this validates every
    //    hardware limit (stages, SRAM, TCAM, PHV, action bus).
    let mut dp = DataplaneModel::deploy(pipeline, &SwitchConfig::tofino2())
        .expect("program fits the switch");
    let report = dp.resource_report();
    println!(
        "deployed: {} stages, SRAM {:.2}%, TCAM {:.2}%, bus {:.2}%",
        report.stages_used,
        report.sram_frac * 100.0,
        report.tcam_frac * 100.0,
        report.bus_frac * 100.0
    );

    // 5. Classify at "line rate".
    let dp_f1 = dp.evaluate(&test.stat).f1;
    println!("on-switch macro-F1: {dp_f1:.4} (Δ {:+.4} vs full precision)", dp_f1 - float_f1);
}

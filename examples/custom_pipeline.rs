//! Authoring a dataplane model directly in Pegasus primitives — the
//! Rust rendition of the paper's Figure 6 Pegasus Syntax:
//!
//! ```text
//! meta.output_vec = SumReduce(Map(Partition(meta.input_vec, dim=2, stride=2), ...));
//! ```
//!
//! Here we hand-build a Neural-Additive scorer, fuse it, compile it with
//! fuzzy matching, deploy it and inspect the tables it became.
//!
//! Run: `cargo run --example custom_pipeline --release`

use pegasus::core::compile::{compile, CompileOptions, CompileTarget};
use pegasus::core::fusion::{fuse_basic, is_nam_form};
use pegasus::core::primitives::{MapFn, PrimitiveProgram};
use pegasus::core::runtime::DataplaneModel;
use pegasus::nn::Tensor;
use pegasus::switch::SwitchConfig;

fn main() {
    // A scorer over 8 feature codes: two classes, each segment of two codes
    // contributes an affine opinion — Partition → Map → SumReduce.
    let mut program = PrimitiveProgram::new(8);
    let segments = program.partition_strided(program.input, 2, 2); // dim=2, stride=2
    let mapped: Vec<_> = segments
        .iter()
        .enumerate()
        .map(|(i, &seg)| {
            // Per-segment weights: alternate which class each segment favors.
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let w = Tensor::from_vec(vec![sign, -sign, sign * 0.5, -sign * 0.5], &[2, 2]);
            program.map(
                seg,
                MapFn::Chain(vec![
                    MapFn::MatVec { weight: w, bias: vec![0.0, 0.0] },
                    MapFn::Relu, // nonlinearity per segment: the NAM form
                ]),
            )
        })
        .collect();
    let out = program.sum_reduce(&mapped);
    program.set_output(out);

    let stats = fuse_basic(&mut program);
    println!(
        "program: {} Map lookups after fusion ({} rewrites); NAM form: {}",
        program.map_count(),
        stats.rewrites,
        is_nam_form(&program)
    );

    // Synthetic training inputs drive cluster fitting + calibration.
    let train: Vec<Vec<f32>> = (0..4000u32)
        .map(|i| (0..8).map(|d| ((i.wrapping_mul(2654435761) >> (d * 3)) % 256) as f32).collect())
        .collect();
    let opts = CompileOptions { clustering_depth: 6, ..Default::default() };
    let pipeline = compile(&program, &train, &opts, CompileTarget::Classify, "custom")
        .expect("training inputs are valid 8-bit codes");
    println!(
        "compiled: {} tables ({} fuzzy / {} exact), {} entries",
        pipeline.report.tables,
        pipeline.report.fuzzy_tables,
        pipeline.report.exact_tables,
        pipeline.report.entries
    );
    for t in &pipeline.program.tables {
        println!("  table {:<18} {} entries", t.name, t.entries.len());
    }

    let dp = DataplaneModel::deploy(pipeline, &SwitchConfig::tofino2()).expect("fits");
    let r = dp.resource_report();
    println!(
        "deployed in {} stages; TCAM {:.3}%, SRAM {:.3}%",
        r.stages_used,
        r.tcam_frac * 100.0,
        r.sram_frac * 100.0
    );

    // Sanity: the switch agrees with the float reference on easy inputs.
    let probe = vec![250.0, 5.0, 250.0, 5.0, 250.0, 5.0, 250.0, 5.0];
    let reference = program.eval(&probe);
    let predicted = dp.classify(&probe).expect("probe has the right arity");
    println!(
        "probe scores (float): {reference:?} -> class {} | switch says {}",
        if reference[0] >= reference[1] { 0 } else { 1 },
        predicted
    );
}

//! Classify a real capture file, bytes to verdicts — the scenario the
//! paper serves: point the deployed model at the traffic actually on the
//! wire.
//!
//! Reads the checked-in golden trace (`tests/fixtures/golden.pcap`, a
//! snaplen-96 capture of the PeerRush-like workload), trains MLP-B on an
//! independently generated trace of the same profiles, and streams the
//! capture's raw frames through the engine's zero-copy wire frontend:
//! every frame is parsed in-line (Ethernet/IPv4/TCP/UDP, checksums
//! verified), unparseable frames land in typed parse-error counters, and
//! every parsed packet flows through per-flow state into a verdict.
//!
//! Run: `cargo run --example pcap_classify --release`

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::{ModelData, TrainSettings};
use pegasus::core::{Pegasus, PegasusError, StreamConfig};
use pegasus::datasets::SyntheticSource;
use pegasus::datasets::{extract_views, generate_trace, peerrush, GenConfig, SyntheticConfig};
use pegasus::net::{FrameSource, PcapSource};
use pegasus::switch::SwitchConfig;
use std::collections::HashMap;

const FIXTURE: &str = "tests/fixtures/golden.pcap";

fn main() -> Result<(), PegasusError> {
    // The capture: 12 flows of 3 P2P application classes, snapped at 96
    // bytes the way a header-only tcpdump run would record them.
    let mut capture = PcapSource::open(FIXTURE)
        .unwrap_or_else(|e| panic!("{FIXTURE}: {e} (run from the repository root)"));
    println!("capture: {} records, snaplen {} — {}", capture.records(), capture.snaplen(), FIXTURE);

    // Train on a separately generated trace of the same class profiles
    // (the capture itself stays blind test data).
    let spec = peerrush();
    let trace = generate_trace(&spec, &GenConfig { flows_per_class: 30, seed: 7 });
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let deployment = Pegasus::<MlpB>::train(&data, &TrainSettings::quick())?
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)?
        .deploy(&SwitchConfig::tofino2())?;

    // Bytes to verdicts: raw frames in, per-flow classifications out.
    let cfg = StreamConfig { shards: 1, record_predictions: true, ..Default::default() };
    let report = deployment.stream_frames_with(&mut capture as &mut dyn FrameSource, &cfg)?;
    println!(
        "streamed {} frames at {:.0} pps: {} classified, {} warm-up, {} flows, \
         {} parse rejections",
        report.packets,
        report.pps(),
        report.classified,
        report.warmup,
        report.flows,
        report.parse.total(),
    );
    assert_eq!(report.parse.total(), 0, "the golden capture contains only parseable frames");

    // Score the per-flow majority verdicts against the generator's
    // ground-truth labels (reconstructable from the fixture config).
    let labels: HashMap<_, _> =
        SyntheticSource::new(&spec, &SyntheticConfig::fixture()).labels().iter().copied().collect();
    let verdicts = report.flow_verdicts().expect("recording enabled");
    let mut per_class: HashMap<usize, u64> = HashMap::new();
    let mut correct = 0u64;
    for (flow, class) in &verdicts {
        *per_class.entry(*class).or_insert(0) += 1;
        if labels.get(flow) == Some(class) {
            correct += 1;
        }
    }
    let mut classes: Vec<_> = per_class.into_iter().collect();
    classes.sort_unstable();
    for (class, flows) in &classes {
        println!("  class {class}: {flows} flows");
    }
    let accuracy = correct as f64 / verdicts.len().max(1) as f64;
    println!(
        "flow accuracy on the capture: {}/{} = {:.1}%",
        correct,
        verdicts.len(),
        100.0 * accuracy
    );
    assert!(
        accuracy >= 0.75,
        "capture classification collapsed: {:.1}% flow accuracy",
        100.0 * accuracy
    );
    Ok(())
}

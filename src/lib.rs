//! # pegasus — umbrella crate
//!
//! Re-exports every crate of the Pegasus reproduction under one roof so the
//! examples and integration tests read naturally:
//!
//! ```
//! use pegasus::switch::SwitchConfig;
//!
//! let tofino = SwitchConfig::tofino2();
//! assert_eq!(tofino.stages, 20);
//! ```
//!
//! The public API is the one trait + one builder of [`core`]: every model
//! (and baseline) implements [`core::models::DataplaneNet`], and the staged
//! [`core::Pegasus`] builder is the single path from trained weights to a
//! serving dataplane:
//!
//! ```no_run
//! use pegasus::core::compile::{CompileOptions, CompileTarget};
//! use pegasus::core::models::mlp_b::MlpB;
//! use pegasus::core::models::{DataplaneNet, ModelData, TrainSettings};
//! use pegasus::core::{Pegasus, PegasusError};
//! use pegasus::switch::SwitchConfig;
//!
//! fn serve(train: &pegasus::nn::Dataset) -> Result<(), PegasusError> {
//!     let data = ModelData::new().with_stat(train);
//!     let model = MlpB::train(&data, &TrainSettings::default())?;
//!     let deployed = Pegasus::new(model)
//!         .options(CompileOptions::default())
//!         .target(CompileTarget::Classify)
//!         .compile(&data)?
//!         .deploy(&SwitchConfig::tofino2())?;
//!     // `&self` inference: share the deployment across threads.
//!     let class = deployed.classify(&[0.0; 16])?;
//!     let _ = class;
//!     Ok(())
//! }
//! ```
//!
//! See the repository README for the full map; the interesting entry points
//! are [`core::models`] (the six paper models behind `DataplaneNet`),
//! [`core::compile`] (the Pegasus compiler), [`core::pipeline`] (the
//! builder), [`core::engine::server`] (the live serving control plane:
//! long-lived multi-tenant engine with hot model swap) and [`switch`]
//! (the Tofino-2 resource model).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pegasus_baselines as baselines;
pub use pegasus_core as core;
pub use pegasus_datasets as datasets;
pub use pegasus_net as net;
pub use pegasus_nn as nn;
pub use pegasus_switch as switch;

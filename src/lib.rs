//! # pegasus — umbrella crate
//!
//! Re-exports every crate of the Pegasus reproduction under one roof so the
//! examples and integration tests read naturally:
//!
//! ```
//! use pegasus::switch::SwitchConfig;
//!
//! let tofino = SwitchConfig::tofino2();
//! assert_eq!(tofino.stages, 20);
//! ```
//!
//! See the repository README for the full map; the interesting entry points
//! are [`core::models`] (the six paper models), [`core::compile`] (the
//! Pegasus compiler) and [`switch`] (the Tofino-2 resource model).

#![warn(missing_docs)]

pub use pegasus_baselines as baselines;
pub use pegasus_core as core;
pub use pegasus_datasets as datasets;
pub use pegasus_net as net;
pub use pegasus_nn as nn;
pub use pegasus_switch as switch;
